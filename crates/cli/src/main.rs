//! `tels` — the command-line ThrEshold Logic Synthesizer.
//!
//! Mirrors the five commands of the paper's SIS-integrated tool (§V-F):
//! one-to-one mapping, threshold synthesis, simulation, and displaying of
//! network information.
//!
//! ```text
//! tels synth  <in.blif> [-o out.tnet] [--psi N] [--delta-on N] [--delta-off N]
//!             [--no-factor] [--best]          threshold network synthesis
//!             [--trace out.json] [--profile] [--stats-json]
//! tels map11  <in.blif> [-o out.tnet] [--psi N] ...
//!                                             one-to-one mapping baseline
//! tels sim    <file.blif|file.tnet> <bits...> simulate input vectors
//! tels verify <spec.blif> <impl.tnet>         check functional equivalence
//! tels info   <file.blif|file.tnet>           gate/level/area statistics
//! tels print  <file.blif|file.tnet>           dump the netlist
//! tels serve  --socket PATH | --stdio         batched synthesis daemon
//! tels client --socket PATH <in.blif...>      submit jobs to a daemon
//! tels top    --socket PATH                   live daemon metrics display
//! tels trace-check <trace.json> [stats.json]  validate trace/stats artifacts
//! ```

use std::fs;
use std::io;
use std::process::ExitCode;

use tels_core::perturb::{failure_rate, failure_rate_scalar, PerturbOptions};
use tels_core::{
    map_one_to_one, map_to_majority, parse_tnet, synthesize, synthesize_best,
    synthesize_with_stats, to_verilog, TelsConfig, ThresholdNetwork,
};
use tels_logic::opt::{script_algebraic, script_boolean};
use tels_logic::{blif, Network};
use tels_serve::protocol::JobRequest;
use tels_serve::{serve_stdio, serve_unix, Client, ServeOptions, ServeSession};
use tels_trace::export;
use tels_trace::json::Json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tels: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: tels <command> [args]
  synth  <in.blif> [-o out.tnet] [--psi N] [--delta-on N] [--delta-off N]
         [--weight-cap N] [--threads N] [--no-cache] [--no-factor]
         [--no-theorem1] [--no-int-solver] [--no-tier0] [--no-tier05] [--best]
         [--trace out.json] [--profile] [--stats-json]
  map11  <in.blif> [-o out.tnet] [--psi N] [--delta-on N] [--delta-off N]
  sim    <file.blif|file.tnet> <bits...>
  verify <spec.blif> <impl.tnet>
  perturb <in.blif> [--variation F] [--trials N] [--vectors N] [--seed N]
         [--threads N] [--delta-on N] [--psi N] [--scalar]
                                         Monte Carlo yield analysis (sVI-C):
                                         synthesize, disturb weights, report
                                         the instance failure rate
  info   <file.blif|file.tnet>
  print  <file.blif|file.tnet>
  qca    <in.blif> [-o out.blif]         synthesize at psi=3 and map to majority logic
  verilog <in.blif|in.tnet> [-o out.v]   emit structural Verilog
  suite  [--psi N]                       run the built-in Table-I benchmark suite
  fuzz   [--cases N] [--seed N] [--psi N] [--threads N] [--max-inputs N]
         [--max-nodes N] [--corpus DIR] [--no-shrink] [--progress N]
         differentially fuzz the synthesis pipeline
  fuzz   --replay DIR                    replay a reproducer corpus
  serve  --socket PATH | --stdio         run the batched synthesis daemon
         [--threads N] [--cache-file PATH] [--metrics]
         [--metrics-interval-ms N] [--recorder-cap N]
  client --socket PATH [in.blif...] [-o out.tnet] [--no-factor] [--verify]
         [--ping] [--stats] [--json] [--metrics] [--metrics-prom]
         [--lint-prom] [--recorder] [--malformed] [--shutdown]
                                         submit jobs to a running daemon
  top    --socket PATH [--interval-ms N] [--count N]
                                         live metrics display for a daemon
                                         started with --metrics
  trace-check <trace.json> [stats.json]  validate --trace / --stats-json artifacts";

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or(USAGE.to_string())?;
    match cmd.as_str() {
        "synth" => cmd_synth(rest),
        "map11" => cmd_map11(rest),
        "sim" => cmd_sim(rest),
        "verify" => cmd_verify(rest),
        "perturb" => cmd_perturb(rest),
        "info" => cmd_info(rest),
        "print" => cmd_print(rest),
        "qca" => cmd_qca(rest),
        "verilog" => cmd_verilog(rest),
        "suite" => cmd_suite(rest),
        "fuzz" => cmd_fuzz(rest),
        "serve" => cmd_serve(rest),
        "client" => cmd_client(rest),
        "top" => cmd_top(rest),
        "trace-check" => cmd_trace_check(rest),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

struct SynthArgs {
    input: String,
    output: Option<String>,
    config: TelsConfig,
    factor: bool,
    best: bool,
    /// Write a Chrome-trace JSON of the run to this path.
    trace: Option<String>,
    /// Print the aggregated profile tree to stderr.
    profile: bool,
    /// Print a machine-readable stats object to stdout instead of the
    /// human-readable stderr summary (and instead of the netlist, unless
    /// `-o` redirects it).
    stats_json: bool,
}

fn parse_synth_args(args: &[String]) -> Result<SynthArgs, String> {
    let mut out = SynthArgs {
        input: String::new(),
        output: None,
        config: TelsConfig::default(),
        factor: true,
        best: false,
        trace: None,
        profile: false,
        stats_json: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<i64, String> {
            it.next()
                .ok_or_else(|| format!("{name} requires a value"))?
                .parse()
                .map_err(|_| format!("{name} requires an integer"))
        };
        match a.as_str() {
            "-o" => {
                out.output = Some(
                    it.next()
                        .ok_or_else(|| "-o requires a path".to_string())?
                        .clone(),
                )
            }
            "--psi" => out.config.psi = num("--psi")? as usize,
            "--delta-on" => out.config.delta_on = num("--delta-on")?,
            "--delta-off" => out.config.delta_off = num("--delta-off")?,
            "--weight-cap" => out.config.weight_cap = Some(num("--weight-cap")?),
            "--threads" => {
                let n = num("--threads")?;
                if n < 0 {
                    return Err("--threads requires a non-negative integer".to_string());
                }
                out.config.num_threads = n as usize;
            }
            "--no-cache" => out.config.use_cache = false,
            "--no-factor" => out.factor = false,
            "--no-theorem1" => out.config.use_theorem1 = false,
            "--no-int-solver" => out.config.use_int_solver = false,
            "--no-tier0" => out.config.use_tier0 = false,
            "--no-tier05" => out.config.use_tier05 = false,
            "--best" => out.best = true,
            "--trace" => {
                out.trace = Some(
                    it.next()
                        .ok_or_else(|| "--trace requires a path".to_string())?
                        .clone(),
                )
            }
            "--profile" => out.profile = true,
            "--stats-json" => out.stats_json = true,
            other if !other.starts_with('-') && out.input.is_empty() => {
                out.input = other.to_string()
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if out.input.is_empty() {
        return Err("missing input file".to_string());
    }
    if out.config.psi < 2 {
        return Err("--psi must be at least 2".to_string());
    }
    Ok(out)
}

fn read_blif(path: &str) -> Result<Network, String> {
    // Stream straight off disk: no full-file buffer, names interned once.
    let file = fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
    blif::parse_reader(io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn read_tnet(path: &str) -> Result<ThresholdNetwork, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_tnet(&text).map_err(|e| format!("{path}: {e}"))
}

fn emit_tnet(tn: &ThresholdNetwork, output: &Option<String>) -> Result<(), String> {
    let text = tn.to_tnet();
    match output {
        Some(path) => fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let a = parse_synth_args(args)?;
    if a.best && a.stats_json {
        return Err("--best collects no run statistics; drop --stats-json".to_string());
    }
    let tracing = a.trace.is_some() || a.profile;
    if tracing {
        tels_trace::enable();
        tels_trace::set_thread_label("main");
    }
    let net = read_blif(&a.input)?;
    let (tn, stats) = {
        let _span = tels_trace::span("cli", "synth");
        let prepared = if a.factor {
            script_algebraic(&net)
        } else {
            net.clone()
        };
        if a.best {
            (
                synthesize_best(&prepared, &a.config).map_err(|e| e.to_string())?,
                None,
            )
        } else {
            let (tn, stats) =
                synthesize_with_stats(&prepared, &a.config).map_err(|e| e.to_string())?;
            if !a.stats_json {
                eprintln!(
                    "tels: {} gates, {} levels, area {} | {} ILP calls, {} theorem-1 prunes, {} theorem-2 combines",
                    tn.num_gates(),
                    tn.depth(),
                    tn.area(),
                    stats.ilp_calls,
                    stats.theorem1_refutations,
                    stats.theorem2_combines
                );
                eprintln!(
                    "tels: {} ILP solves, {} tier-0 lookups, {} tier-0.5 answers ({} hits, {} rejects, {} negcache hits), {} cache hits, {} pre-filter rejections ({} solves avoided)",
                    stats.ilp_solves,
                    stats.solver.tier0_lookups,
                    stats.solver.tier05_hits + stats.solver.tier05_rejects
                        + stats.solver.negcache_hits,
                    stats.solver.tier05_hits,
                    stats.solver.tier05_rejects,
                    stats.solver.negcache_hits,
                    stats.cache_hits,
                    stats.prefilter_rejections,
                    stats.ilp_avoided()
                );
                let sv = &stats.solver;
                eprintln!(
                    "tels: solver: {} int fast-path, {} rational fallbacks, {} Chow-merged vars | structure {:.2} ms, int {:.2} ms, rational {:.2} ms",
                    sv.int_fast_path_solves,
                    sv.rational_fallbacks,
                    sv.chow_merged_vars,
                    sv.structure_ns as f64 / 1e6,
                    sv.int_solve_ns as f64 / 1e6,
                    sv.rational_solve_ns as f64 / 1e6
                );
            }
            (tn, Some(stats))
        }
    };
    match tn
        .verify_against(&net, 12, 1024, 1)
        .map_err(|e| e.to_string())?
    {
        None => eprintln!("tels: simulation check passed"),
        Some(cex) => return Err(format!("internal error: mismatch at {cex:?}")),
    }
    let trace = if tracing {
        tels_trace::disable();
        Some(tels_trace::drain())
    } else {
        None
    };
    if let Some(trace) = &trace {
        if let Some(path) = &a.trace {
            fs::write(path, export::chrome_trace(trace)).map_err(|e| format!("{path}: {e}"))?;
        }
        if a.profile {
            eprint!("{}", export::profile_tree(trace)?);
        }
    }
    if a.stats_json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("model", Json::str(tn.model())),
            ("gates", Json::Num(tn.num_gates() as f64)),
            ("levels", Json::Num(tn.depth() as f64)),
            ("area", Json::Num(tn.area() as f64)),
        ];
        if let Some(stats) = &stats {
            pairs.push(("stats", stats.to_json()));
        }
        if let Some(trace) = &trace {
            pairs.push(("ilp_histograms", export::ilp_histograms(trace)));
        }
        println!("{}", Json::obj(pairs).pretty());
        if a.output.is_none() {
            // stdout carries the JSON object; the netlist needs `-o`.
            return Ok(());
        }
    }
    emit_tnet(&tn, &a.output)
}

/// Runs the batched synthesis daemon (`tels serve`): a long-lived process
/// holding one worker pool and per-configuration realization caches, fed
/// jobs over the framed JSON protocol on stdin/stdout (`--stdio`) or a
/// unix socket (`--socket`). With `--cache-file`, the realization caches
/// are loaded at startup and saved on shutdown, so threshold-check results
/// persist across daemon restarts.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut socket: Option<String> = None;
    let mut stdio = false;
    let mut threads = 0usize;
    let mut cache_file: Option<String> = None;
    let mut metrics_enabled = false;
    let mut metrics_interval_ms = 0u64;
    let mut recorder_capacity = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} requires a non-negative integer"))
        };
        match a.as_str() {
            "--socket" => {
                socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket requires a path".to_string())?
                        .clone(),
                )
            }
            "--stdio" => stdio = true,
            "--threads" => threads = num("--threads")? as usize,
            "--cache-file" => {
                cache_file = Some(
                    it.next()
                        .ok_or_else(|| "--cache-file requires a path".to_string())?
                        .clone(),
                )
            }
            "--metrics" => metrics_enabled = true,
            "--metrics-interval-ms" => metrics_interval_ms = num("--metrics-interval-ms")?,
            "--recorder-cap" => recorder_capacity = num("--recorder-cap")? as usize,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if stdio == socket.is_some() {
        return Err("serve requires exactly one of --socket <path> or --stdio".to_string());
    }
    let session = ServeSession::new(ServeOptions {
        threads,
        cache_file: cache_file.map(std::path::PathBuf::from),
        metrics_enabled,
        metrics_interval_ms,
        recorder_capacity,
    })?;
    if stdio {
        serve_stdio(&session).map_err(|e| e.to_string())?;
    } else {
        let path = socket.expect("checked above");
        eprintln!(
            "tels: serving on {path} ({} worker threads)",
            session.threads()
        );
        serve_unix(std::sync::Arc::new(session), std::path::Path::new(&path))
            .map_err(|e| e.to_string())?;
        eprintln!("tels: daemon stopped");
    }
    Ok(())
}

/// Submits jobs to a running daemon (`tels client`): synthesizes each
/// positional BLIF file in order, plus optional `--ping`, `--stats`
/// (human-readable; `--json` for the raw object), `--metrics` /
/// `--metrics-prom` / `--lint-prom` live-metrics scrapes, `--malformed`
/// (deliberately unparseable frame, to exercise the daemon's error
/// containment) and `--shutdown` control requests.
fn cmd_client(args: &[String]) -> Result<(), String> {
    let mut socket: Option<String> = None;
    let mut files: Vec<String> = Vec::new();
    let mut output: Option<String> = None;
    let mut factor = true;
    let mut verify = false;
    let mut ping = false;
    let mut stats = false;
    let mut json = false;
    let mut metrics = false;
    let mut metrics_prom = false;
    let mut lint_prom = false;
    let mut recorder = false;
    let mut malformed = false;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--socket" => {
                socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket requires a path".to_string())?
                        .clone(),
                )
            }
            "-o" => {
                output = Some(
                    it.next()
                        .ok_or_else(|| "-o requires a path".to_string())?
                        .clone(),
                )
            }
            "--no-factor" => factor = false,
            "--verify" => verify = true,
            "--ping" => ping = true,
            "--stats" => stats = true,
            "--json" => json = true,
            "--metrics" => metrics = true,
            "--metrics-prom" => metrics_prom = true,
            "--lint-prom" => lint_prom = true,
            "--recorder" => recorder = true,
            "--malformed" => malformed = true,
            "--shutdown" => shutdown = true,
            other if !other.starts_with('-') => files.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let socket = socket.ok_or("client requires --socket <path>")?;
    if output.is_some() && files.len() != 1 {
        return Err("-o requires exactly one input file".to_string());
    }
    let mut client =
        Client::connect(std::path::Path::new(&socket)).map_err(|e| format!("{socket}: {e}"))?;
    if ping {
        let reply = client.ping()?;
        eprintln!("tels: ping -> {reply}");
    }
    if malformed {
        // A framed-but-unparseable payload: the daemon must answer with an
        // error reply and keep the connection usable for the jobs below.
        let reply = client.request_raw(b"{this is deliberately not json")?;
        if reply.get("ok") != Some(&Json::Bool(false)) {
            return Err(format!("malformed frame was not rejected: {reply}"));
        }
        eprintln!("tels: malformed frame rejected as expected: {reply}");
    }
    for path in &files {
        let blif = fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let req = JobRequest {
            blif,
            factor,
            verify,
            ..JobRequest::default()
        };
        let reply = client.synth(&req)?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            let msg = reply
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error");
            return Err(format!("{path}: job failed: {msg}"));
        }
        let tnet = reply
            .get("tnet")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: reply lacks tnet payload"))?;
        eprintln!(
            "tels: {path}: {} gates, {} levels, area {} ({:.1} ms)",
            reply.get("gates").and_then(Json::as_u64).unwrap_or(0),
            reply.get("levels").and_then(Json::as_u64).unwrap_or(0),
            reply.get("area").and_then(Json::as_u64).unwrap_or(0),
            reply.get("micros").and_then(Json::as_f64).unwrap_or(0.0) / 1e3
        );
        match &output {
            Some(out) => fs::write(out, tnet).map_err(|e| format!("{out}: {e}"))?,
            None => print!("{tnet}"),
        }
    }
    if stats {
        let reply = client.stats()?;
        let body = reply.get("stats").unwrap_or(&reply);
        if json {
            println!("{}", body.pretty());
        } else {
            print_stats_pretty(body);
        }
    }
    if metrics {
        let reply = client.metrics(false, recorder)?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("metrics request failed: {reply}"));
        }
        println!("{}", reply.pretty());
    }
    if metrics_prom || lint_prom {
        let reply = client.metrics(true, false)?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("metrics request failed: {reply}"));
        }
        let text = reply
            .get("prometheus")
            .and_then(Json::as_str)
            .ok_or("metrics reply lacks prometheus text")?;
        if lint_prom {
            tels_metrics::lint_prometheus(text).map_err(|e| format!("prometheus lint: {e}"))?;
            eprintln!("tels: prometheus exposition passes the lint");
        }
        if metrics_prom {
            print!("{text}");
        }
    }
    if shutdown {
        let reply = client.shutdown()?;
        eprintln!("tels: shutdown -> {reply}");
    }
    Ok(())
}

/// Formats a microsecond quantity with a readable unit.
fn fmt_us(us: f64) -> String {
    if us < 1e3 {
        format!("{us:.0} µs")
    } else if us < 1e6 {
        format!("{:.1} ms", us / 1e3)
    } else {
        format!("{:.2} s", us / 1e6)
    }
}

/// Formats a nanosecond quantity with a readable unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else {
        fmt_us(ns / 1e3)
    }
}

/// Formats a byte count with a readable unit.
fn fmt_bytes(b: f64) -> String {
    if b < 1024.0 {
        format!("{b:.0} B")
    } else if b < 1024.0 * 1024.0 {
        format!("{:.1} KiB", b / 1024.0)
    } else {
        format!("{:.1} MiB", b / (1024.0 * 1024.0))
    }
}

/// Human-readable `tels client --stats` output: counters in prose, the
/// latency histogram's log2 buckets rendered as microsecond ranges with a
/// scaled bar. `--json` restores the raw object.
fn print_stats_pretty(body: &Json) {
    let get = |k: &str| body.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "jobs:        {:.0} ok, {:.0} failed, {:.0} bad frame(s)",
        get("jobs_ok"),
        get("jobs_failed"),
        get("bad_frames")
    );
    println!(
        "pool:        {:.0} worker thread(s), up {}",
        get("pool_threads"),
        fmt_us(get("uptime_ms") * 1e3)
    );
    let caches = body
        .get("caches")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    println!(
        "cache:       {:.0} entries in {caches} configuration(s)",
        get("cache_entries")
    );
    println!(
        "negcache:    {:.0} rejection signature(s)",
        get("negcache_entries")
    );
    let Some(lat) = body.get("job_latency_us") else {
        return;
    };
    let h = |k: &str| lat.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "job latency: count {:.0}, mean {}, p50 {}, p90 {}, p99 {}, max {}",
        h("count"),
        fmt_us(h("mean")),
        fmt_us(h("p50")),
        fmt_us(h("p90")),
        fmt_us(h("p99")),
        fmt_us(h("max"))
    );
    let Some(buckets) = lat.get("buckets").and_then(Json::as_array) else {
        return;
    };
    let pairs: Vec<(u32, f64)> = buckets
        .iter()
        .filter_map(|b| {
            let cell = b.as_array()?;
            Some((cell.first()?.as_f64()? as u32, cell.get(1)?.as_f64()?))
        })
        .collect();
    let peak = pairs.iter().map(|&(_, n)| n).fold(0.0, f64::max);
    for (bits, n) in pairs {
        // Log2 bucket `bits` holds values in [2^(bits-1), 2^bits − 1] µs
        // (bucket 0 holds exactly 0).
        let (lo, hi) = if bits == 0 {
            (0u128, 0u128)
        } else {
            (1u128 << (bits - 1), (1u128 << bits) - 1)
        };
        let bar = "#".repeat(((n / peak.max(1.0)) * 30.0).ceil() as usize);
        println!(
            "  [{:>9} .. {:>9}]  {bar} {n:.0}",
            fmt_us(lo as f64),
            fmt_us(hi as f64)
        );
    }
}

/// Reads one metric out of a snapshot's `metrics` map as f64: counters and
/// gauges are plain numbers, per-index series contribute their `total`.
fn metric_value(snap: &Json, name: &str) -> f64 {
    let Some(v) = snap.get("metrics").and_then(|m| m.get(name)) else {
        return 0.0;
    };
    v.as_f64()
        .or_else(|| v.get("total").and_then(Json::as_f64))
        .unwrap_or(0.0)
}

/// Live metrics display (`tels top`): polls the daemon's `metrics` request
/// at a fixed interval, computes rates from consecutive snapshots, and
/// renders a compact refreshing dashboard. `--count 1` prints one frame
/// without clearing the screen (scriptable / testable); `--count 0` (the
/// default) runs until interrupted.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut socket: Option<String> = None;
    let mut interval_ms = 1000u64;
    let mut count = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<u64, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} requires a non-negative integer"))
        };
        match a.as_str() {
            "--socket" => {
                socket = Some(
                    it.next()
                        .ok_or_else(|| "--socket requires a path".to_string())?
                        .clone(),
                )
            }
            "--interval-ms" => interval_ms = num("--interval-ms")?.max(50),
            "--count" => count = num("--count")? as usize,
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let socket = socket.ok_or("top requires --socket <path>")?;
    let mut client =
        Client::connect(std::path::Path::new(&socket)).map_err(|e| format!("{socket}: {e}"))?;
    let mut prev: Option<Json> = None;
    let mut frames = 0usize;
    loop {
        let reply = client.metrics(false, false)?;
        if reply.get("ok") != Some(&Json::Bool(true)) {
            return Err(format!("metrics request failed: {reply}"));
        }
        let enabled = reply.get("enabled") == Some(&Json::Bool(true));
        let snap = reply
            .get("metrics")
            .cloned()
            .ok_or("metrics reply lacks a snapshot")?;
        frames += 1;
        if count != 1 {
            // Clear + home, like top(1); skipped for one-shot use so the
            // output composes with pipes and tests.
            print!("\x1b[2J\x1b[H");
        }
        render_top(&socket, &snap, prev.as_ref(), enabled);
        prev = Some(snap);
        if count != 0 && frames >= count {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Renders one `tels top` frame from a snapshot and its predecessor.
fn render_top(socket: &str, snap: &Json, prev: Option<&Json>, enabled: bool) {
    let v = |name: &str| metric_value(snap, name);
    let ts = snap.get("ts_ns").and_then(Json::as_f64).unwrap_or(0.0);
    let dt = prev
        .and_then(|p| p.get("ts_ns").and_then(Json::as_f64))
        .map(|t0| (ts - t0) / 1e9)
        .filter(|d| *d > 0.0);
    let rate = |name: &str| -> String {
        match (dt, prev) {
            (Some(dt), Some(p)) => {
                format!("{:.1}/s", (v(name) - metric_value(p, name)) / dt)
            }
            _ => "--/s".to_string(),
        }
    };
    println!(
        "tels top — {socket} — metrics {} — uptime {}",
        if enabled {
            "ON"
        } else {
            "OFF (start the daemon with --metrics)"
        },
        fmt_ns(ts)
    );
    println!();
    println!(
        "serve   jobs ok {:.0} ({})   failed {:.0}   inflight {:.0}   connections {:.0}",
        v("tels_serve_jobs_ok_total"),
        rate("tels_serve_jobs_ok_total"),
        v("tels_serve_jobs_failed_total"),
        v("tels_serve_jobs_inflight"),
        v("tels_serve_connections_open"),
    );
    println!(
        "        frames {:.0}   bytes in {} ({})   out {} ({})",
        v("tels_serve_frames_total"),
        fmt_bytes(v("tels_serve_bytes_in_total")),
        rate("tels_serve_bytes_in_total"),
        fmt_bytes(v("tels_serve_bytes_out_total")),
        rate("tels_serve_bytes_out_total"),
    );
    let hist = |name: &str, field: &str| -> f64 {
        snap.get("metrics")
            .and_then(|m| m.get(name))
            .and_then(|h| h.get(field))
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
    };
    println!(
        "        queue wait p50 {} p99 {}   job run p50 {} p99 {}",
        fmt_ns(hist("tels_serve_queue_wait_ns", "p50")),
        fmt_ns(hist("tels_serve_queue_wait_ns", "p99")),
        fmt_ns(hist("tels_serve_job_run_ns", "p50")),
        fmt_ns(hist("tels_serve_job_run_ns", "p99")),
    );
    let busy = v("tels_sched_busy_ns_total");
    let idle = v("tels_sched_idle_ns_total");
    let util = if busy + idle > 0.0 {
        1e2 * busy / (busy + idle)
    } else {
        0.0
    };
    println!(
        "sched   tasks {:.0} ({})   steals {:.0}   steal-fails {:.0}   injector {:.0}   deques {:.0}",
        v("tels_sched_tasks_total"),
        rate("tels_sched_tasks_total"),
        v("tels_sched_steals_total"),
        v("tels_sched_steal_fails_total"),
        v("tels_sched_injector_depth"),
        v("tels_sched_deque_depth"),
    );
    println!(
        "        busy {}   idle {}   utilization {util:.1}%",
        fmt_ns(busy),
        fmt_ns(idle)
    );
    let hits = v("tels_cache_hits_total");
    let misses = v("tels_cache_misses_total");
    let hit_rate = if hits + misses > 0.0 {
        1e2 * hits / (hits + misses)
    } else {
        0.0
    };
    println!(
        "cache   hits {hits:.0} ({})   misses {misses:.0}   inserts {:.0}   hit rate {hit_rate:.1}%",
        rate("tels_cache_hits_total"),
        v("tels_cache_inserts_total"),
    );
    println!(
        "check   trivial {:.0}   tier0 {:.0}   tier05 {:.0}   cache {:.0}   theorem1 {:.0}   prefilter {:.0}   ilp {:.0}   canon {}",
        v("tels_check_trivial_total"),
        v("tels_check_tier0_total"),
        v("tels_check_tier05_total"),
        v("tels_check_cache_hits_total"),
        v("tels_check_theorem1_total"),
        v("tels_check_prefilter_total"),
        v("tels_check_ilp_solves_total"),
        fmt_ns(v("tels_check_canon_ns_total")),
    );
    let neg_hits = v("tels_negcache_hits_total");
    let neg_misses = v("tels_negcache_misses_total");
    let neg_rate = if neg_hits + neg_misses > 0.0 {
        1e2 * neg_hits / (neg_hits + neg_misses)
    } else {
        0.0
    };
    println!(
        "negcache hits {neg_hits:.0} ({})   misses {neg_misses:.0}   inserts {:.0}   hit rate {neg_rate:.1}%",
        rate("tels_negcache_hits_total"),
        v("tels_negcache_inserts_total"),
    );
    println!(
        "eval    vectors {:.0} ({})   perturb trials {:.0}",
        v("tels_eval_vectors_total"),
        rate("tels_eval_vectors_total"),
        v("tels_perturb_trials_total"),
    );
}

/// Validates a `--trace` Chrome-trace file (and optionally a `--stats-json`
/// object): the JSON must parse with the in-tree parser, begin/end events
/// must nest per thread, spans from all four instrumented crates must be
/// present, and the provenance journal must hold exactly one entry per
/// emitted gate.
fn cmd_trace_check(args: &[String]) -> Result<(), String> {
    let (trace_path, stats_path) = match args {
        [t] => (t, None),
        [t, s] => (t, Some(s)),
        _ => return Err("trace-check requires <trace.json> [stats.json]".to_string()),
    };
    let text = fs::read_to_string(trace_path).map_err(|e| format!("{trace_path}: {e}"))?;
    let doc = tels_trace::json::parse(&text).map_err(|e| format!("{trace_path}: {e}"))?;
    let summary = export::validate_chrome_json(&doc).map_err(|e| format!("{trace_path}: {e}"))?;
    for cat in ["cli", "core", "ilp", "logic"] {
        if !summary.categories.iter().any(|c| c == cat) {
            return Err(format!("{trace_path}: no `{cat}` events recorded"));
        }
    }
    if summary.provenance == 0 {
        return Err(format!("{trace_path}: provenance journal is empty"));
    }
    if let Some(stats_path) = stats_path {
        let text = fs::read_to_string(stats_path).map_err(|e| format!("{stats_path}: {e}"))?;
        let stats = tels_trace::json::parse(&text).map_err(|e| format!("{stats_path}: {e}"))?;
        for key in ["model", "gates", "levels", "area", "stats"] {
            if stats.get(key).is_none() {
                return Err(format!("{stats_path}: missing key `{key}`"));
            }
        }
        let run = stats.get("stats").expect("checked above");
        for key in ["ilp_calls", "ilp_solves", "cache_hits", "solver"] {
            if run.get(key).is_none() {
                return Err(format!("{stats_path}: missing key `stats.{key}`"));
            }
        }
        let solver = run.get("solver").expect("checked above");
        for key in ["tier0_lookups", "support_hist"] {
            if solver.get(key).is_none() {
                return Err(format!("{stats_path}: missing key `stats.solver.{key}`"));
            }
        }
        let gates = stats
            .get("gates")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{stats_path}: `gates` is not a count"))?;
        if summary.provenance as u64 != gates {
            return Err(format!(
                "{trace_path}: {} provenance entries for {} gates",
                summary.provenance, gates
            ));
        }
    }
    println!(
        "trace-check: ok ({} events, {} spans, {} provenance entries, categories: {})",
        summary.events,
        summary.spans,
        summary.provenance,
        summary.categories.join(",")
    );
    Ok(())
}

fn cmd_map11(args: &[String]) -> Result<(), String> {
    let a = parse_synth_args(args)?;
    let net = read_blif(&a.input)?;
    let tn = map_one_to_one(&net, &a.config).map_err(|e| e.to_string())?;
    eprintln!(
        "tels: {} gates, {} levels, area {}",
        tn.num_gates(),
        tn.depth(),
        tn.area()
    );
    emit_tnet(&tn, &a.output)
}

fn parse_bits(bits: &str, expected: usize) -> Result<Vec<bool>, String> {
    if bits.len() != expected {
        return Err(format!(
            "expected {expected} input bits, got {}",
            bits.len()
        ));
    }
    bits.chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            other => Err(format!("invalid bit `{other}`")),
        })
        .collect()
}

fn cmd_sim(args: &[String]) -> Result<(), String> {
    let (path, vectors) = args
        .split_first()
        .ok_or("sim requires a netlist and at least one bit vector")?;
    if vectors.is_empty() {
        return Err("sim requires at least one bit vector".to_string());
    }
    if path.ends_with(".tnet") {
        let tn = read_tnet(path)?;
        for v in vectors {
            let assign = parse_bits(v, tn.num_inputs())?;
            let out = tn.eval(&assign).map_err(|e| e.to_string())?;
            println!(
                "{v} -> {}",
                out.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            );
        }
    } else {
        let net = read_blif(path)?;
        for v in vectors {
            let assign = parse_bits(v, net.num_inputs())?;
            let out = net.eval(&assign).map_err(|e| e.to_string())?;
            println!(
                "{v} -> {}",
                out.iter()
                    .map(|&b| if b { '1' } else { '0' })
                    .collect::<String>()
            );
        }
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let [spec, imp] = args else {
        return Err("verify requires <spec.blif> <impl.tnet>".to_string());
    };
    let net = read_blif(spec)?;
    let tn = read_tnet(imp)?;
    match tn
        .verify_against(&net, 14, 4096, 0x5eed)
        .map_err(|e| e.to_string())?
    {
        None => {
            println!("equivalent (up to simulation effort)");
            Ok(())
        }
        Some(cex) => Err(format!(
            "NOT equivalent: counterexample {}",
            cex.iter()
                .map(|&b| if b { '1' } else { '0' })
                .collect::<String>()
        )),
    }
}

/// §VI-C Monte Carlo yield analysis from the command line: synthesize the
/// input, disturb every weight by `variation · U(−0.5, 0.5)` per trial,
/// and report the fraction of disturbed instances that compute a wrong
/// output on any simulated vector. Runs on the word-parallel engine by
/// default; `--scalar` selects the reference scalar path (same seeds,
/// bit-identical rate — useful for cross-checking and timing).
fn cmd_perturb(args: &[String]) -> Result<(), String> {
    let mut input = String::new();
    let mut config = TelsConfig::default();
    let mut opts = PerturbOptions::default();
    let mut scalar = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} requires a non-negative integer"))
        };
        match a.as_str() {
            "--variation" => {
                opts.variation = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--variation requires a number")?
            }
            "--trials" => opts.trials = num("--trials")?,
            "--vectors" => opts.vectors = num("--vectors")?,
            "--exhaustive-limit" => opts.exhaustive_limit = num("--exhaustive-limit")? as u32,
            "--seed" => opts.seed = num("--seed")? as u64,
            "--threads" => opts.threads = num("--threads")?,
            "--delta-on" => {
                config.delta_on = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--delta-on requires an integer")?
            }
            "--psi" => config.psi = num("--psi")?,
            "--scalar" => scalar = true,
            other if !other.starts_with('-') && input.is_empty() => input = other.to_string(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if input.is_empty() {
        return Err("perturb requires an input BLIF file".to_string());
    }
    if config.psi < 2 {
        return Err("--psi must be at least 2".to_string());
    }
    if opts.variation.is_nan() || opts.variation < 0.0 {
        return Err("--variation must be non-negative".to_string());
    }
    let net = read_blif(&input)?;
    let prepared = script_algebraic(&net);
    let tn = synthesize(&prepared, &config).map_err(|e| e.to_string())?;
    let rate = if scalar {
        failure_rate_scalar(&tn, &net, &opts)
    } else {
        failure_rate(&tn, &net, &opts)
    }
    .map_err(|e| e.to_string())?;
    eprintln!(
        "tels: {} gates, area {}, delta_on {} | variation {}, {} trials x {} vectors, seed {:#x} ({})",
        tn.num_gates(),
        tn.area(),
        config.delta_on,
        opts.variation,
        opts.trials,
        opts.vectors,
        opts.seed,
        if scalar { "scalar" } else { "packed" }
    );
    println!(
        "failure rate: {:.6} ({:.2}% of {} trials)",
        rate,
        1e2 * rate,
        opts.trials
    );
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("info requires exactly one netlist".to_string());
    };
    if path.ends_with(".tnet") {
        let tn = read_tnet(path)?;
        println!("model:   {}", tn.model());
        println!("{}", tn.report());
    } else {
        let net = read_blif(path)?;
        println!("model:    {}", net.model());
        println!("inputs:   {}", net.num_inputs());
        println!("outputs:  {}", net.outputs().len());
        println!("nodes:    {}", net.num_logic_nodes());
        println!("literals: {}", net.num_literals());
        println!("levels:   {}", net.depth().map_err(|e| e.to_string())?);
    }
    Ok(())
}

fn cmd_qca(args: &[String]) -> Result<(), String> {
    let mut a = parse_synth_args(args)?;
    if a.config.psi > 3 {
        return Err("qca mapping requires --psi <= 3".to_string());
    }
    a.config.psi = a.config.psi.min(3);
    let net = read_blif(&a.input)?;
    let prepared = if a.factor {
        script_algebraic(&net)
    } else {
        net.clone()
    };
    let tn = synthesize(&prepared, &a.config).map_err(|e| e.to_string())?;
    let (qca, stats) = map_to_majority(&tn).map_err(|e| e.to_string())?;
    eprintln!(
        "tels: {} threshold gates -> {} majority gates + {} inverters",
        tn.num_gates(),
        stats.majority_gates,
        stats.inverters
    );
    let text = blif::write(&qca);
    match &a.output {
        Some(path) => fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_verilog(args: &[String]) -> Result<(), String> {
    let a = parse_synth_args(args)?;
    let tn = if a.input.ends_with(".tnet") {
        read_tnet(&a.input)?
    } else {
        let net = read_blif(&a.input)?;
        let prepared = if a.factor {
            script_algebraic(&net)
        } else {
            net.clone()
        };
        synthesize(&prepared, &a.config).map_err(|e| e.to_string())?
    };
    let text = to_verilog(&tn);
    match &a.output {
        Some(path) => fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_suite(args: &[String]) -> Result<(), String> {
    let mut config = TelsConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--psi" => {
                config.psi = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--psi requires an integer")?
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    println!(
        "{:<14} | {:>10} {:>7} {:>7} | {:>10} {:>7} {:>7}",
        "benchmark", "1:1 gates", "levels", "area", "TELS gates", "levels", "area"
    );
    println!("{}", "-".repeat(78));
    for b in tels_circuits::paper_suite() {
        let boolean = script_boolean(&b.network);
        let algebraic = script_algebraic(&b.network);
        let baseline = map_one_to_one(&boolean, &config).map_err(|e| e.to_string())?;
        let tels = synthesize(&algebraic, &config).map_err(|e| e.to_string())?;
        println!(
            "{:<14} | {:>10} {:>7} {:>7} | {:>10} {:>7} {:>7}",
            b.name,
            baseline.num_gates(),
            baseline.depth(),
            baseline.area(),
            tels.num_gates(),
            tels.depth(),
            tels.area()
        );
    }
    Ok(())
}

fn cmd_fuzz(args: &[String]) -> Result<(), String> {
    let mut opts = tels_fuzz::FuzzOptions {
        progress_every: 1000,
        ..tels_fuzz::FuzzOptions::default()
    };
    let mut replay: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{name} requires a non-negative integer"))
        };
        match a.as_str() {
            "--cases" => opts.cases = num("--cases")?,
            "--seed" => opts.seed = num("--seed")? as u64,
            "--psi" => opts.oracle.psi = num("--psi")?,
            "--threads" => opts.oracle.alt_threads = num("--threads")?.max(2),
            "--max-inputs" => opts.gen.max_inputs = num("--max-inputs")?.max(2),
            "--max-nodes" => opts.gen.max_nodes = num("--max-nodes")?.max(1),
            "--progress" => opts.progress_every = num("--progress")?,
            "--no-shrink" => opts.shrink = false,
            "--corpus" => {
                opts.corpus_dir = Some(
                    it.next()
                        .ok_or_else(|| "--corpus requires a directory".to_string())?
                        .into(),
                )
            }
            "--replay" => {
                replay = Some(
                    it.next()
                        .ok_or_else(|| "--replay requires a directory".to_string())?
                        .clone(),
                )
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    if let Some(dir) = replay {
        // replay_corpus tolerates a missing directory (Ok(0)) so the corpus
        // test passes on a fresh checkout; from the CLI a typo'd path must
        // not silently count as a clean replay.
        if !std::path::Path::new(&dir).is_dir() {
            return Err(format!("--replay: no such directory `{dir}`"));
        }
        return match tels_fuzz::replay_corpus(std::path::Path::new(&dir), &opts.oracle) {
            Ok(n) => {
                println!("corpus replay: {n} reproducer(s) pass the oracle");
                Ok(())
            }
            Err(bad) => {
                for (path, why) in &bad {
                    eprintln!("FAIL {}: {}", path.display(), why);
                }
                Err(format!("{} corpus file(s) failed", bad.len()))
            }
        };
    }

    let report = tels_fuzz::fuzz(&opts);
    if report.failures.is_empty() {
        println!(
            "fuzz: {} case(s) passed the full oracle matrix (seed {}, psi {})",
            report.cases, opts.seed, opts.oracle.psi
        );
        return Ok(());
    }
    for f in &report.failures {
        eprintln!(
            "FAIL case {} (seed {:#x}) on the {} leg: {}",
            f.case_index,
            f.case_seed,
            f.kind.tag(),
            f.detail
        );
        match &f.corpus_path {
            Some(p) => eprintln!("  reproducer: {}", p.display()),
            None => eprintln!(
                "  reproducer (rerun with --corpus DIR to save):\n{}",
                tels_fuzz::reproducer_blif(f)
            ),
        }
    }
    Err(format!(
        "{} of {} case(s) failed the differential oracle",
        report.failures.len(),
        report.cases
    ))
}

fn cmd_print(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("print requires exactly one netlist".to_string());
    };
    if path.ends_with(".tnet") {
        print!("{}", read_tnet(path)?.to_tnet());
    } else {
        print!("{}", blif::write(&read_blif(path)?));
    }
    Ok(())
}
