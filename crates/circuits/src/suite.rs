//! The ten-benchmark suite standing in for Table I of the paper.

use tels_logic::Network;

use crate::arithmetic::cordic_like;
use crate::random_net::{random_network, RandomNetOptions};
use crate::structured::{comparator, mux_tree, priority_encoder, wire_fabric};

/// Values reported by the paper's Table I (fanin restriction 3) for the
/// original MCNC benchmark each of our generators stands in for.
///
/// These are reference points for *shape* comparison (who wins, by roughly
/// what factor); absolute values differ because the circuits are stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// One-to-one mapping: gates / levels / area.
    pub one_to_one: (u32, u32, u32),
    /// TELS threshold synthesis: gates / levels / area.
    pub tels: (u32, u32, u32),
}

/// A suite entry: the stand-in circuit plus the paper's reference numbers.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name (`<mcnc-name>_like`).
    pub name: &'static str,
    /// The original MCNC circuit this stands in for.
    pub stands_in_for: &'static str,
    /// The generated stand-in network.
    pub network: Network,
    /// Table I numbers for the original circuit.
    pub paper: PaperRow,
}

fn row(o: (u32, u32, u32), t: (u32, u32, u32)) -> PaperRow {
    PaperRow {
        one_to_one: o,
        tels: t,
    }
}

/// Builds the ten-benchmark suite mirroring Table I.
///
/// Each benchmark is a deterministic stand-in for the MCNC circuit of the
/// same base name (see `DESIGN.md` §3). The `i10` stand-in is scaled down
/// (about a quarter of the original's node count) to keep experiment wall
/// time reasonable; this is documented in `EXPERIMENTS.md`.
pub fn paper_suite() -> Vec<Benchmark> {
    vec![
        Benchmark {
            name: "cm152a_like",
            stands_in_for: "cm152a",
            network: mux_tree(3),
            paper: row((28, 4, 99), (13, 4, 69)),
        },
        Benchmark {
            name: "cordic_like",
            stands_in_for: "cordic",
            network: cordic_like(8, 7),
            paper: row((92, 9, 307), (39, 8, 219)),
        },
        Benchmark {
            name: "cm85a_like",
            stands_in_for: "cm85a",
            network: comparator(4),
            paper: row((70, 8, 254), (16, 6, 158)),
        },
        Benchmark {
            name: "comp_like",
            stands_in_for: "comp",
            network: comparator(16),
            paper: row((181, 12, 625), (70, 9, 435)),
        },
        Benchmark {
            name: "cmb_like",
            stands_in_for: "cmb",
            network: priority_encoder(8),
            paper: row((41, 7, 142), (16, 7, 103)),
        },
        Benchmark {
            name: "term1_like",
            stands_in_for: "term1",
            network: random_network(
                "term1_like",
                0x7e51_0001,
                &RandomNetOptions {
                    inputs: 34,
                    outputs: 10,
                    nodes: 130,
                    max_fanin: 4,
                    max_cubes: 3,
                    negation_pct: 30,
                    locality_pct: 55,
                },
            ),
            paper: row((397, 12, 1459), (144, 16, 787)),
        },
        Benchmark {
            name: "pm1_like",
            stands_in_for: "pm1",
            network: random_network(
                "pm1_like",
                0x7e51_0002,
                &RandomNetOptions {
                    inputs: 16,
                    outputs: 13,
                    nodes: 40,
                    max_fanin: 3,
                    max_cubes: 2,
                    negation_pct: 25,
                    locality_pct: 40,
                },
            ),
            paper: row((49, 5, 176), (22, 3, 119)),
        },
        Benchmark {
            name: "x1_like",
            stands_in_for: "x1",
            network: random_network(
                "x1_like",
                0x7e51_0003,
                &RandomNetOptions {
                    inputs: 51,
                    outputs: 35,
                    nodes: 190,
                    max_fanin: 4,
                    max_cubes: 3,
                    negation_pct: 30,
                    locality_pct: 50,
                },
            ),
            paper: row((428, 10, 1589), (144, 10, 968)),
        },
        Benchmark {
            name: "i10_like",
            stands_in_for: "i10 (scaled ~1/4)",
            network: random_network(
                "i10_like",
                0x7e51_0004,
                &RandomNetOptions {
                    inputs: 120,
                    outputs: 100,
                    nodes: 700,
                    max_fanin: 4,
                    max_cubes: 3,
                    negation_pct: 30,
                    locality_pct: 55,
                },
            ),
            paper: row((2874, 49, 10934), (1276, 47, 7261)),
        },
        Benchmark {
            name: "tcon_like",
            stands_in_for: "tcon",
            network: wire_fabric(8),
            paper: row((24, 2, 80), (32, 2, 96)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_entries() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 10);
        let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        assert!(names.contains(&"comp_like"));
        assert!(names.contains(&"tcon_like"));
    }

    #[test]
    fn interfaces_match_documented_profiles() {
        for b in paper_suite() {
            let (pi, po) = (b.network.num_inputs(), b.network.outputs().len());
            match b.name {
                "cm152a_like" => assert_eq!((pi, po), (11, 1)),
                "cordic_like" => assert_eq!((pi, po), (23, 2)),
                "cm85a_like" => assert_eq!((pi, po), (8, 3)),
                "comp_like" => assert_eq!((pi, po), (32, 3)),
                "cmb_like" => assert_eq!((pi, po), (16, 4)),
                "term1_like" => assert_eq!((pi, po), (34, 10)),
                "pm1_like" => assert_eq!((pi, po), (16, 13)),
                "x1_like" => assert_eq!((pi, po), (51, 35)),
                "i10_like" => assert_eq!((pi, po), (120, 100)),
                "tcon_like" => assert_eq!((pi, po), (17, 16)),
                other => panic!("unexpected benchmark {other}"),
            }
        }
    }

    #[test]
    fn all_networks_acyclic_and_evaluable() {
        for b in paper_suite() {
            assert!(b.network.topo_order().is_ok(), "{} cyclic", b.name);
            let assign = vec![false; b.network.num_inputs()];
            assert!(b.network.eval(&assign).is_ok(), "{} not evaluable", b.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = paper_suite();
        let b = paper_suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.network.num_logic_nodes(), y.network.num_logic_nodes());
            let assign: Vec<bool> = (0..x.network.num_inputs()).map(|i| i % 3 == 0).collect();
            assert_eq!(
                x.network.eval(&assign).unwrap(),
                y.network.eval(&assign).unwrap(),
                "{} differs between builds",
                x.name
            );
        }
    }
}
