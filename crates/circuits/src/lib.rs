//! # tels-circuits — benchmark circuits for TELS-RS
//!
//! The TELS paper evaluates on the MCNC benchmark suite, whose BLIF files
//! are not redistributable here. This crate provides **deterministic,
//! functionally specified generators** standing in for the ten circuits
//! reported in Table I, chosen to match each original's interface size and
//! logic style (see `DESIGN.md` §3 for the substitution rationale), plus a
//! library of generic structured circuits (multiplexers, comparators,
//! adders, parity trees, decoders) used by tests and examples.
//!
//! Every generator is a pure function of its parameters (random circuits
//! take an explicit seed), so all experiments are reproducible.
//!
//! ## Example
//!
//! ```
//! use tels_circuits::{comparator, mux_tree};
//!
//! let cmp = comparator(4);
//! assert_eq!(cmp.num_inputs(), 8);
//! assert_eq!(cmp.outputs().len(), 3); // gt, lt, eq
//!
//! let mux = mux_tree(3);
//! assert_eq!(mux.num_inputs(), 11); // 8 data + 3 select
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arithmetic;
mod extra;
mod large;
mod random_net;
mod structured;
mod suite;

pub use arithmetic::{cordic_like, ripple_adder};
pub use extra::{alu_slice, barrel_shifter, c17, gray_code};
pub use large::{alu_array, array_multiplier, lfsr_cone, majority_grid, parity_ladder};
pub use random_net::{random_network, RandomNetOptions};
pub use structured::{
    comparator, decoder, majority, mux_tree, parity_tree, priority_encoder, wire_fabric,
};
pub use suite::{paper_suite, Benchmark, PaperRow};
