//! Large deterministic circuit generators for scaling experiments.
//!
//! The paper-suite circuits (Table I) are small enough that per-call
//! overheads dominate; these generators produce wide/deep networks with
//! hundreds to thousands of nodes so the word-parallel simulation engine
//! and batched Monte Carlo yield analysis have something to push against.
//! Every generator is a pure function of its parameters.

use tels_logic::{Cube, Network, NodeId, Sop, Var};

fn sop(cubes: &[&[(u32, bool)]]) -> Sop {
    Sop::from_cubes(
        cubes
            .iter()
            .map(|c| Cube::from_literals(c.iter().map(|&(v, p)| (Var(v), p)))),
    )
}

/// AND over fanins 0,1.
fn and2() -> Sop {
    sop(&[&[(0, true), (1, true)]])
}

/// XOR over fanins 0,1 (half-adder sum).
fn xor2() -> Sop {
    sop(&[&[(0, true), (1, false)], &[(0, false), (1, true)]])
}

/// XOR3 over fanins 0,1,2 (full-adder sum).
fn xor3() -> Sop {
    sop(&[
        &[(0, true), (1, false), (2, false)],
        &[(0, false), (1, true), (2, false)],
        &[(0, false), (1, false), (2, true)],
        &[(0, true), (1, true), (2, true)],
    ])
}

/// Majority over fanins 0,1,2 (full-adder carry).
fn maj3() -> Sop {
    sop(&[
        &[(0, true), (1, true)],
        &[(0, true), (2, true)],
        &[(1, true), (2, true)],
    ])
}

/// An `n`×`n` array multiplier: inputs `a0..a(n−1)`, `b0..b(n−1)`; outputs
/// `p0..p(2n−1)` with `p = a·b`.
///
/// AND-gate partial products feed ripple rows of half/full adders — the
/// classic school-book array, `O(n²)` gates and `O(n)` depth.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn array_multiplier(n: usize) -> Network {
    assert!(n >= 2, "array multiplier needs n >= 2");
    let mut net = Network::new(format!("mult{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let pp = |net: &mut Network, i: usize, j: usize| -> NodeId {
        net.add_node(format!("pp{i}_{j}"), vec![a[j], b[i]], and2())
            .expect("fresh")
    };

    // Row 0: a·b0. Bit 0 is final; bits 1.. carry into the next row.
    let row0: Vec<NodeId> = (0..n).map(|j| pp(&mut net, 0, j)).collect();
    net.add_output("p0", row0[0]).expect("fresh");
    // `high` holds the accumulated sum shifted down by the rows consumed
    // so far (an implicit 0 above its top bit).
    let mut high: Vec<NodeId> = row0[1..].to_vec();

    for i in 1..n {
        let row: Vec<NodeId> = (0..n).map(|j| pp(&mut net, i, j)).collect();
        let mut carry: Option<NodeId> = None;
        let mut sum = Vec::with_capacity(n);
        for (j, &r) in row.iter().enumerate() {
            let operands: Vec<NodeId> = [Some(r), high.get(j).copied(), carry]
                .into_iter()
                .flatten()
                .collect();
            match operands.len() {
                1 => {
                    sum.push(operands[0]);
                }
                2 => {
                    let s = net
                        .add_node(format!("s{i}_{j}"), operands.clone(), xor2())
                        .expect("fresh");
                    let c = net
                        .add_node(format!("c{i}_{j}"), operands, and2())
                        .expect("fresh");
                    sum.push(s);
                    carry = Some(c);
                }
                _ => {
                    let s = net
                        .add_node(format!("s{i}_{j}"), operands.clone(), xor3())
                        .expect("fresh");
                    let c = net
                        .add_node(format!("c{i}_{j}"), operands, maj3())
                        .expect("fresh");
                    sum.push(s);
                    carry = Some(c);
                }
            }
        }
        net.add_output(format!("p{i}"), sum[0]).expect("fresh");
        high = sum[1..].to_vec();
        if let Some(c) = carry {
            high.push(c);
        }
    }
    for (k, &bit) in high.iter().enumerate() {
        net.add_output(format!("p{}", n + k), bit).expect("fresh");
    }
    net
}

/// The tap positions of the [`lfsr_cone`] feedback polynomial for a given
/// register width (always includes bit `width − 1`).
fn lfsr_taps(width: usize) -> Vec<usize> {
    let mut taps = vec![0, 1, width / 2, width - 1];
    taps.sort_unstable();
    taps.dedup();
    taps.retain(|&t| t < width);
    taps
}

/// A Fibonacci LFSR unrolled for `steps` clock ticks: inputs
/// `s0..s(width−1)` are the initial register state, outputs
/// `o0..o(width−1)` the state after `steps` shifts.
///
/// Each tick XORs a fixed tap set into the fed-back bit and shifts the
/// register up, so output cones deepen with `steps` while early outputs
/// stay shallow — some may alias inputs outright, exercising the
/// output-is-input paths of the simulator.
///
/// # Panics
///
/// Panics if `width < 4` or `steps == 0`.
pub fn lfsr_cone(width: usize, steps: usize) -> Network {
    assert!(width >= 4 && steps >= 1);
    let mut net = Network::new(format!("lfsr{width}x{steps}"));
    let mut state: Vec<NodeId> = (0..width)
        .map(|i| net.add_input(format!("s{i}")).expect("fresh"))
        .collect();
    let taps = lfsr_taps(width);
    for t in 0..steps {
        let mut fb = state[taps[0]];
        for (k, &tap) in taps.iter().enumerate().skip(1) {
            fb = net
                .add_node(format!("fb{t}_{k}"), vec![fb, state[tap]], xor2())
                .expect("fresh");
        }
        // Shift up: s' = [fb, s0, …, s(width−2)].
        state.pop();
        state.insert(0, fb);
    }
    for (i, &bit) in state.iter().enumerate() {
        net.add_output(format!("o{i}"), bit).expect("fresh");
    }
    net
}

/// A `width`×`depth` grid of MAJ3 gates: layer `l` cell `i` is the
/// majority of cells `i−1`, `i`, `i+1` (wrapping) of layer `l−1`; layer 0
/// is the inputs `x0..x(width−1)`. Outputs `m0..m(width−1)` are the final
/// layer — a cellular-automaton-style mesh whose cones widen with depth.
///
/// # Panics
///
/// Panics if `width < 3` or `depth == 0`.
pub fn majority_grid(width: usize, depth: usize) -> Network {
    assert!(width >= 3 && depth >= 1);
    let mut net = Network::new(format!("majgrid{width}x{depth}"));
    let mut layer: Vec<NodeId> = (0..width)
        .map(|i| net.add_input(format!("x{i}")).expect("fresh"))
        .collect();
    for l in 0..depth {
        layer = (0..width)
            .map(|i| {
                let fanins = vec![
                    layer[(i + width - 1) % width],
                    layer[i],
                    layer[(i + 1) % width],
                ];
                net.add_node(format!("m{l}_{i}"), fanins, maj3())
                    .expect("fresh")
            })
            .collect();
    }
    for (i, &bit) in layer.iter().enumerate() {
        net.add_output(format!("m{i}"), bit).expect("fresh");
    }
    net
}

/// A `width`×`depth` ladder of XOR2 gates: layer `l` cell `i` is
/// `prev[i] ⊕ prev[(i+1) mod width]`. After `depth ≥ log₂(width)` layers
/// every output is a parity over a wide input window — deep XOR cones are
/// the worst case for SOP-based evaluation and a natural fit for the
/// packed engine.
///
/// # Panics
///
/// Panics if `width < 2` or `depth == 0`.
pub fn parity_ladder(width: usize, depth: usize) -> Network {
    assert!(width >= 2 && depth >= 1);
    let mut net = Network::new(format!("parlad{width}x{depth}"));
    let mut layer: Vec<NodeId> = (0..width)
        .map(|i| net.add_input(format!("x{i}")).expect("fresh"))
        .collect();
    for l in 0..depth {
        layer = (0..width)
            .map(|i| {
                let fanins = vec![layer[i], layer[(i + 1) % width]];
                net.add_node(format!("p{l}_{i}"), fanins, xor2())
                    .expect("fresh")
            })
            .collect();
    }
    for (i, &bit) in layer.iter().enumerate() {
        net.add_output(format!("o{i}"), bit).expect("fresh");
    }
    net
}

/// OR over fanins 0,1.
fn or2() -> Sop {
    sop(&[&[(0, true)], &[(1, true)]])
}

/// 4-way operation select over fanins `[op0, op1, and, or, xor, sum]`.
fn alu_mux() -> Sop {
    sop(&[
        &[(0, false), (1, false), (2, true)],
        &[(0, true), (1, false), (3, true)],
        &[(0, false), (1, true), (4, true)],
        &[(0, true), (1, true), (5, true)],
    ])
}

/// A `width`-bit ALU slice array: inputs `a0..`, `b0..`, `cin`, and a 2-bit
/// opcode `op0 op1` selecting AND / OR / XOR / ADD; outputs `f0..f(width−1)`
/// and the adder's `cout`.
///
/// Each bit builds the three bitwise results *and* an independent
/// generate/propagate pair for the ripple carry — so `a⊕b` and `a·b` are
/// each synthesized twice per bit (9 gates/bit, 2 of them structurally
/// redundant). That makes this the reference workload for measuring how much
/// structural hashing ([`tels_logic::arena::StrashNet`]) shrinks a network
/// whose generator naively duplicates logic.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn alu_array(width: usize) -> Network {
    assert!(width >= 2, "alu array needs width >= 2");
    let mut net = Network::new(format!("alu{width}"));
    let a: Vec<NodeId> = (0..width)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..width)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let cin = net.add_input("cin").expect("fresh");
    let op0 = net.add_input("op0").expect("fresh");
    let op1 = net.add_input("op1").expect("fresh");

    let mut carry = cin;
    for i in 0..width {
        let ab = vec![a[i], b[i]];
        let and_i = net
            .add_node(format!("and{i}"), ab.clone(), and2())
            .expect("fresh");
        let or_i = net
            .add_node(format!("or{i}"), ab.clone(), or2())
            .expect("fresh");
        let xor_i = net
            .add_node(format!("xor{i}"), ab.clone(), xor2())
            .expect("fresh");
        // Independent generate/propagate pair — duplicates and/xor above.
        let g_i = net
            .add_node(format!("g{i}"), ab.clone(), and2())
            .expect("fresh");
        let p_i = net.add_node(format!("p{i}"), ab, xor2()).expect("fresh");
        let sum_i = net
            .add_node(format!("sum{i}"), vec![p_i, carry], xor2())
            .expect("fresh");
        let t_i = net
            .add_node(format!("t{i}"), vec![p_i, carry], and2())
            .expect("fresh");
        carry = net
            .add_node(format!("c{}", i + 1), vec![g_i, t_i], or2())
            .expect("fresh");
        let f_i = net
            .add_node(
                format!("f{i}_mux"),
                vec![op0, op1, and_i, or_i, xor_i, sum_i],
                alu_mux(),
            )
            .expect("fresh");
        net.add_output(format!("f{i}"), f_i).expect("fresh");
    }
    net.add_output("cout", carry).expect("fresh");
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use tels_logic::arena::StrashNet;

    fn bits(v: u64, n: usize) -> Vec<bool> {
        (0..n).map(|i| v >> i & 1 != 0).collect()
    }

    #[test]
    fn multiplier_is_exhaustively_correct() {
        for n in [2usize, 3, 4] {
            let net = array_multiplier(n);
            assert_eq!(net.num_inputs(), 2 * n);
            assert_eq!(net.outputs().len(), 2 * n);
            for a in 0..1u64 << n {
                for b in 0..1u64 << n {
                    let mut assign = bits(a, n);
                    assign.extend(bits(b, n));
                    let out = net.eval(&assign).unwrap();
                    let p = a * b;
                    for (i, &o) in out.iter().enumerate() {
                        assert_eq!(o, p >> i & 1 != 0, "n={n} a={a} b={b} bit{i}");
                    }
                }
            }
        }
    }

    /// Software model of the unrolled LFSR.
    fn lfsr_model(width: usize, steps: usize, init: u64) -> u64 {
        let taps = lfsr_taps(width);
        let mut s = init;
        for _ in 0..steps {
            let fb = taps.iter().fold(0, |acc, &t| acc ^ (s >> t & 1));
            s = (s << 1 | fb) & ((1 << width) - 1);
        }
        s
    }

    #[test]
    fn lfsr_matches_software_model() {
        let (width, steps) = (8usize, 11usize);
        let net = lfsr_cone(width, steps);
        assert_eq!(net.num_inputs(), width);
        assert_eq!(net.outputs().len(), width);
        for trial in 0..64u64 {
            let init = trial.wrapping_mul(0x9e3779b97f4a7c15) >> 56 | trial << 2;
            let init = init & ((1 << width) - 1);
            let out = net.eval(&bits(init, width)).unwrap();
            let expect = lfsr_model(width, steps, init);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, expect >> i & 1 != 0, "init={init} bit{i}");
            }
        }
    }

    #[test]
    fn majority_grid_matches_software_model() {
        let (width, depth) = (7usize, 5usize);
        let net = majority_grid(width, depth);
        for trial in 0..1u64 << width {
            let mut layer = bits(trial, width);
            for _ in 0..depth {
                layer = (0..width)
                    .map(|i| {
                        let votes = u8::from(layer[(i + width - 1) % width])
                            + u8::from(layer[i])
                            + u8::from(layer[(i + 1) % width]);
                        votes >= 2
                    })
                    .collect();
            }
            assert_eq!(net.eval(&bits(trial, width)).unwrap(), layer, "x={trial}");
        }
    }

    #[test]
    fn parity_ladder_matches_software_model() {
        let (width, depth) = (6usize, 9usize);
        let net = parity_ladder(width, depth);
        for trial in 0..1u64 << width {
            let mut layer = bits(trial, width);
            for _ in 0..depth {
                layer = (0..width)
                    .map(|i| layer[i] ^ layer[(i + 1) % width])
                    .collect();
            }
            assert_eq!(net.eval(&bits(trial, width)).unwrap(), layer, "x={trial}");
        }
    }

    #[test]
    fn alu_array_matches_software_model() {
        for width in [2usize, 3] {
            let net = alu_array(width);
            assert_eq!(net.num_inputs(), 2 * width + 3);
            assert_eq!(net.outputs().len(), width + 1);
            let mask = (1u64 << width) - 1;
            for a in 0..1u64 << width {
                for b in 0..1u64 << width {
                    for cin in 0..2u64 {
                        for op in 0..4u64 {
                            let mut assign = bits(a, width);
                            assign.extend(bits(b, width));
                            assign.push(cin != 0);
                            assign.push(op & 1 != 0);
                            assign.push(op & 2 != 0);
                            let out = net.eval(&assign).unwrap();
                            let expect = match op {
                                0 => a & b,
                                1 => a | b,
                                2 => a ^ b,
                                _ => (a + b + cin) & mask,
                            };
                            for (i, &o) in out[..width].iter().enumerate() {
                                assert_eq!(
                                    o,
                                    expect >> i & 1 != 0,
                                    "w={width} a={a} b={b} cin={cin} op={op} bit{i}"
                                );
                            }
                            let cout = (a + b + cin) >> width & 1 != 0;
                            assert_eq!(out[width], cout, "w={width} a={a} b={b} cin={cin} cout");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn alu_array_dedups_under_structural_hashing() {
        // g/p duplicate and/xor per bit: strash must strip ≥ 2 gates a bit.
        let width = 8;
        let net = alu_array(width);
        let arena = StrashNet::from_network(&net).unwrap();
        assert!(
            arena.num_gates() + 2 * width <= net.num_logic_nodes(),
            "{} gates vs {} nodes",
            arena.num_gates(),
            net.num_logic_nodes()
        );
        assert!(arena.dedup_hits() >= 2 * width);
        let back = arena.to_network().unwrap();
        let mut assign = vec![false; net.num_inputs()];
        for trial in 0..1u64 << (2 * width + 3).min(14) {
            for (i, slot) in assign.iter_mut().enumerate() {
                *slot = trial >> (i % 14) & 1 != 0;
            }
            assert_eq!(net.eval(&assign).unwrap(), back.eval(&assign).unwrap());
        }
    }

    #[test]
    fn generators_scale() {
        // The whole point: these are much bigger than the paper suite.
        assert!(array_multiplier(8).num_logic_nodes() > 150);
        assert!(majority_grid(32, 16).num_logic_nodes() > 500);
        assert!(parity_ladder(32, 16).num_logic_nodes() > 500);
        assert!(lfsr_cone(24, 40).num_logic_nodes() > 100);
        assert!(alu_array(32).num_logic_nodes() > 250);
    }
}
