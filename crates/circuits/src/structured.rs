//! Structured combinational circuit generators.

use tels_logic::{Cube, Network, NodeId, Sop, Var};

fn cube(lits: &[(u32, bool)]) -> Cube {
    Cube::from_literals(lits.iter().map(|&(v, p)| (Var(v), p)))
}

fn sop(cubes: &[&[(u32, bool)]]) -> Sop {
    Sop::from_cubes(cubes.iter().map(|c| cube(c)))
}

/// An `2ⁿ:1` multiplexer built as a tree of 2:1 muxes.
///
/// Inputs: `d0..d(2ⁿ−1)` then `s0..s(n−1)`; one output `y`. With `n = 3`
/// this is the 11-input, 1-output profile of MCNC `cm152a`.
///
/// # Panics
///
/// Panics if `select_bits` is 0 or greater than 6.
pub fn mux_tree(select_bits: usize) -> Network {
    assert!((1..=6).contains(&select_bits));
    let mut net = Network::new(format!("mux{}", 1 << select_bits));
    let data: Vec<NodeId> = (0..1usize << select_bits)
        .map(|i| net.add_input(format!("d{i}")).expect("fresh"))
        .collect();
    let sel: Vec<NodeId> = (0..select_bits)
        .map(|i| net.add_input(format!("s{i}")).expect("fresh"))
        .collect();
    let mut layer = data;
    for (bit, &s) in sel.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in layer.chunks(2) {
            // y = s̄·a ∨ s·b  (fanins: a, b, s)
            let name = net.fresh_name(&format!("m{bit}_"));
            let node = net
                .add_node(
                    name,
                    vec![pair[0], pair[1], s],
                    sop(&[&[(0, true), (2, false)], &[(1, true), (2, true)]]),
                )
                .expect("fresh mux node");
            next.push(node);
        }
        layer = next;
    }
    net.add_output("y", layer[0]).expect("single root");
    net
}

/// An `n`-bit magnitude comparator with outputs `gt`, `lt`, `eq`.
///
/// Inputs `a0..a(n−1)`, `b0..b(n−1)` (bit 0 is the LSB). With `n = 16` this
/// matches the 32-input, 3-output profile of MCNC `comp`; `n = 4` stands in
/// for `cm85a`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn comparator(n: usize) -> Network {
    assert!(n > 0);
    let mut net = Network::new(format!("comp{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    // Per-bit equality (XNOR) and a>b.
    let mut eqs = Vec::with_capacity(n);
    let mut gts = Vec::with_capacity(n);
    for i in 0..n {
        let eq = net
            .add_node(
                format!("eq{i}"),
                vec![a[i], b[i]],
                sop(&[&[(0, true), (1, true)], &[(0, false), (1, false)]]),
            )
            .expect("fresh");
        let gt = net
            .add_node(
                format!("gtb{i}"),
                vec![a[i], b[i]],
                sop(&[&[(0, true), (1, false)]]),
            )
            .expect("fresh");
        eqs.push(eq);
        gts.push(gt);
    }
    // Balanced combine tree, LSB..MSB pairs; for a high half (gt_h, eq_h)
    // and a low half (gt_l, eq_l): gt = gt_h ∨ eq_h·gt_l, eq = eq_h·eq_l.
    let mut layer: Vec<(NodeId, NodeId)> = gts.into_iter().zip(eqs).collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut iter = layer.chunks(2);
        for pair in &mut iter {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let (gt_l, eq_l) = pair[0];
            let (gt_h, eq_h) = pair[1];
            let gt_name = net.fresh_name("gtc");
            let gt = net
                .add_node(
                    gt_name,
                    vec![gt_h, eq_h, gt_l],
                    sop(&[&[(0, true)], &[(1, true), (2, true)]]),
                )
                .expect("fresh");
            let eq_name = net.fresh_name("eqc");
            let eq = net
                .add_node(eq_name, vec![eq_h, eq_l], sop(&[&[(0, true), (1, true)]]))
                .expect("fresh");
            next.push((gt, eq));
        }
        layer = next;
    }
    let (gt_all, eq_all) = layer[0];
    // lt = ¬gt · ¬eq.
    let lt = net
        .add_node(
            "lt_out",
            vec![gt_all, eq_all],
            sop(&[&[(0, false), (1, false)]]),
        )
        .expect("fresh");
    net.add_output("gt", gt_all).expect("fresh");
    net.add_output("lt", lt).expect("fresh");
    net.add_output("eq", eq_all).expect("fresh");
    net
}

/// An `n`-input parity (XOR) tree, output `p`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn parity_tree(n: usize) -> Network {
    assert!(n >= 2);
    let mut net = Network::new(format!("parity{n}"));
    let mut layer: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("x{i}")).expect("fresh"))
        .collect();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        let mut iter = layer.chunks(2);
        for pair in &mut iter {
            if pair.len() == 1 {
                next.push(pair[0]);
                continue;
            }
            let name = net.fresh_name("xr");
            let x = net
                .add_node(
                    name,
                    vec![pair[0], pair[1]],
                    sop(&[&[(0, true), (1, false)], &[(0, false), (1, true)]]),
                )
                .expect("fresh");
            next.push(x);
        }
        layer = next;
    }
    net.add_output("p", layer[0]).expect("fresh");
    net
}

/// An `n`-to-`2ⁿ` decoder with an enable input.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 6.
pub fn decoder(n: usize) -> Network {
    assert!((1..=6).contains(&n));
    let mut net = Network::new(format!("dec{n}"));
    let sel: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("s{i}")).expect("fresh"))
        .collect();
    let en = net.add_input("en").expect("fresh");
    for m in 0..1usize << n {
        let mut fanins = sel.clone();
        fanins.push(en);
        let lits: Vec<(u32, bool)> = (0..n)
            .map(|i| (i as u32, m >> i & 1 != 0))
            .chain([(n as u32, true)])
            .collect();
        let node = net
            .add_node(format!("y{m}_n"), fanins, sop(&[&lits]))
            .expect("fresh");
        net.add_output(format!("y{m}"), node).expect("fresh");
    }
    net
}

/// An `n`-input majority function (true when more than half the inputs are).
///
/// # Panics
///
/// Panics if `n` is even or less than 3 (majority needs an odd input count).
pub fn majority(n: usize) -> Network {
    assert!(n >= 3 && n % 2 == 1, "majority needs an odd n ≥ 3");
    let mut net = Network::new(format!("maj{n}"));
    let inputs: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("x{i}")).expect("fresh"))
        .collect();
    // SOP of all (n+1)/2-subsets.
    let k = n / 2 + 1;
    let mut cubes: Vec<Cube> = Vec::new();
    let mut pick = vec![0usize; k];
    fn rec(
        start: usize,
        depth: usize,
        k: usize,
        n: usize,
        pick: &mut Vec<usize>,
        cubes: &mut Vec<Cube>,
    ) {
        if depth == k {
            cubes.push(Cube::from_literals(
                pick.iter().map(|&i| (Var(i as u32), true)),
            ));
            return;
        }
        for i in start..n {
            pick[depth] = i;
            rec(i + 1, depth + 1, k, n, pick, cubes);
        }
    }
    rec(0, 0, k, n, &mut pick, &mut cubes);
    let node = net
        .add_node("m", inputs, Sop::from_cubes(cubes))
        .expect("fresh");
    net.add_output("m", node).expect("fresh");
    net
}

/// A priority encoder over `n` request lines with per-line mask inputs:
/// outputs the binary index of the highest-priority unmasked request plus a
/// `valid` flag. With `n = 8` this is a 16-input, 4-output control block
/// standing in for MCNC `cmb`.
///
/// # Panics
///
/// Panics if `n` is not a power of two between 2 and 32.
pub fn priority_encoder(n: usize) -> Network {
    assert!(n.is_power_of_two() && (2..=32).contains(&n));
    let bits = n.trailing_zeros() as usize;
    let mut net = Network::new(format!("prienc{n}"));
    let req: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("r{i}")).expect("fresh"))
        .collect();
    let mask: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("m{i}")).expect("fresh"))
        .collect();
    // Active requests: a_i = r_i · m̄_i.
    let act: Vec<NodeId> = (0..n)
        .map(|i| {
            net.add_node(
                format!("a{i}"),
                vec![req[i], mask[i]],
                sop(&[&[(0, true), (1, false)]]),
            )
            .expect("fresh")
        })
        .collect();
    // Grant_i = a_i · Π_{j<i} ā_j (line 0 has highest priority), built as a
    // chain of "none so far" terms.
    let mut none_above = Vec::with_capacity(n);
    let mut prev: Option<NodeId> = None;
    for (i, &a) in act.iter().enumerate().take(n - 1) {
        let node = match prev {
            None => net
                .add_node(format!("na{i}"), vec![a], sop(&[&[(0, false)]]))
                .expect("fresh"),
            Some(p) => net
                .add_node(
                    format!("na{i}"),
                    vec![p, a],
                    sop(&[&[(0, true), (1, false)]]),
                )
                .expect("fresh"),
        };
        none_above.push(node);
        prev = Some(node);
    }
    let grant: Vec<NodeId> = (0..n)
        .map(|i| {
            if i == 0 {
                act[0]
            } else {
                net.add_node(
                    format!("g{i}"),
                    vec![none_above[i - 1], act[i]],
                    sop(&[&[(0, true), (1, true)]]),
                )
                .expect("fresh")
            }
        })
        .collect();
    // Binary index bits: y_b = OR of grants whose index has bit b set.
    for b in 0..bits {
        let fanins: Vec<NodeId> = (0..n)
            .filter(|i| i >> b & 1 == 1)
            .map(|i| grant[i])
            .collect();
        let cubes: Vec<Vec<(u32, bool)>> =
            (0..fanins.len()).map(|i| vec![(i as u32, true)]).collect();
        let cube_refs: Vec<&[(u32, bool)]> = cubes.iter().map(Vec::as_slice).collect();
        let node = net
            .add_node(format!("y{b}_n"), fanins, sop(&cube_refs))
            .expect("fresh");
        net.add_output(format!("y{b}"), node).expect("fresh");
    }
    // valid = OR of all active lines.
    let cubes: Vec<Vec<(u32, bool)>> = (0..n).map(|i| vec![(i as u32, true)]).collect();
    let cube_refs: Vec<&[(u32, bool)]> = cubes.iter().map(Vec::as_slice).collect();
    let valid = net
        .add_node("valid_n", act.clone(), sop(&cube_refs))
        .expect("fresh");
    net.add_output("valid", valid).expect("fresh");
    net
}

/// A wire/inverter fabric: `n` buffer outputs and `n` inverter outputs plus
/// one unused enable input. With `n = 8` this gives the 17-input, 16-output
/// profile of MCNC `tcon` — the adversarial case where one-to-one mapping
/// beats synthesis (§VI-A).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn wire_fabric(n: usize) -> Network {
    assert!(n > 0);
    let mut net = Network::new(format!("tcon{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let _en = net.add_input("en").expect("fresh");
    for i in 0..n {
        let inv = net
            .add_node(format!("na{i}_n"), vec![a[i]], sop(&[&[(0, false)]]))
            .expect("fresh");
        net.add_output(format!("na{i}"), inv).expect("fresh");
        let buf = net
            .add_node(format!("pb{i}_n"), vec![b[i]], sop(&[&[(0, true)]]))
            .expect("fresh");
        net.add_output(format!("pb{i}"), buf).expect("fresh");
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_selects_correct_data() {
        let net = mux_tree(3);
        assert_eq!(net.num_inputs(), 11);
        for sel in 0..8usize {
            for data in [0usize, 0xff, 0xa5, 1 << sel] {
                let mut assign = vec![false; 11];
                for (d, slot) in assign.iter_mut().enumerate().take(8) {
                    *slot = data >> d & 1 != 0;
                }
                for s in 0..3 {
                    assign[8 + s] = sel >> s & 1 != 0;
                }
                let out = net.eval(&assign).unwrap();
                assert_eq!(out[0], data >> sel & 1 != 0, "sel={sel} data={data:x}");
            }
        }
    }

    #[test]
    fn comparator_is_correct() {
        let net = comparator(3);
        for a in 0..8u32 {
            for b in 0..8u32 {
                let mut assign = vec![false; 6];
                for i in 0..3 {
                    assign[i] = a >> i & 1 != 0;
                    assign[3 + i] = b >> i & 1 != 0;
                }
                let out = net.eval(&assign).unwrap();
                assert_eq!(out[0], a > b, "gt a={a} b={b}");
                assert_eq!(out[1], a < b, "lt a={a} b={b}");
                assert_eq!(out[2], a == b, "eq a={a} b={b}");
            }
        }
    }

    #[test]
    fn parity_is_correct() {
        let net = parity_tree(5);
        for m in 0..32u32 {
            let assign: Vec<bool> = (0..5).map(|i| m >> i & 1 != 0).collect();
            let out = net.eval(&assign).unwrap();
            assert_eq!(out[0], m.count_ones() % 2 == 1, "m={m}");
        }
    }

    #[test]
    fn decoder_one_hot() {
        let net = decoder(3);
        for m in 0..8usize {
            let mut assign: Vec<bool> = (0..3).map(|i| m >> i & 1 != 0).collect();
            assign.push(true); // enable
            let out = net.eval(&assign).unwrap();
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, i == m);
            }
            // Disabled → all zero.
            assign[3] = false;
            assert!(net.eval(&assign).unwrap().iter().all(|&o| !o));
        }
    }

    #[test]
    fn majority_is_correct() {
        let net = majority(5);
        for m in 0..32u32 {
            let assign: Vec<bool> = (0..5).map(|i| m >> i & 1 != 0).collect();
            let out = net.eval(&assign).unwrap();
            assert_eq!(out[0], m.count_ones() >= 3, "m={m}");
        }
    }

    #[test]
    fn priority_encoder_picks_lowest_unmasked() {
        let net = priority_encoder(4);
        // Inputs: r0..r3, m0..m3; outputs y0 y1 valid.
        let eval = |req: u32, mask: u32| -> (usize, bool) {
            let mut assign = vec![false; 8];
            for i in 0..4 {
                assign[i] = req >> i & 1 != 0;
                assign[4 + i] = mask >> i & 1 != 0;
            }
            let out = net.eval(&assign).unwrap();
            let idx = usize::from(out[0]) | usize::from(out[1]) << 1;
            (idx, out[2])
        };
        assert_eq!(eval(0b0000, 0), (0, false));
        assert_eq!(eval(0b0001, 0), (0, true));
        assert_eq!(eval(0b1110, 0), (1, true));
        assert_eq!(eval(0b1000, 0), (3, true));
        assert_eq!(eval(0b1001, 0b0001), (3, true)); // line 0 masked
    }

    #[test]
    fn wire_fabric_profile() {
        let net = wire_fabric(8);
        assert_eq!(net.num_inputs(), 17);
        assert_eq!(net.outputs().len(), 16);
        let mut assign = vec![false; 17];
        assign[0] = true; // a0
        assign[8] = true; // b0
        let out = net.eval(&assign).unwrap();
        assert!(!out[0]); // na0 = ā0
        assert!(out[1]); // pb0 = b0
        assert!(out[2]); // na1 = ā1 = 1
    }
}
