//! Arithmetic circuit generators: ripple adders and a CORDIC-style
//! shift-add rotation network.

use tels_logic::{Cube, Network, NodeId, Sop, Var};

fn sop(cubes: &[&[(u32, bool)]]) -> Sop {
    Sop::from_cubes(
        cubes
            .iter()
            .map(|c| Cube::from_literals(c.iter().map(|&(v, p)| (Var(v), p)))),
    )
}

/// XOR3 over fanins 0,1,2 (full-adder sum).
fn sum3() -> Sop {
    sop(&[
        &[(0, true), (1, false), (2, false)],
        &[(0, false), (1, true), (2, false)],
        &[(0, false), (1, false), (2, true)],
        &[(0, true), (1, true), (2, true)],
    ])
}

/// Majority over fanins 0,1,2 (full-adder carry).
fn carry3() -> Sop {
    sop(&[
        &[(0, true), (1, true)],
        &[(0, true), (2, true)],
        &[(1, true), (2, true)],
    ])
}

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..s(n−1)`, `cout`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ripple_adder(n: usize) -> Network {
    assert!(n > 0);
    let mut net = Network::new(format!("add{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let mut carry = net.add_input("cin").expect("fresh");
    for i in 0..n {
        let s = net
            .add_node(format!("s{i}_n"), vec![a[i], b[i], carry], sum3())
            .expect("fresh");
        net.add_output(format!("s{i}"), s).expect("fresh");
        carry = net
            .add_node(format!("c{i}_n"), vec![a[i], b[i], carry], carry3())
            .expect("fresh");
    }
    net.add_output("cout", carry).expect("fresh");
    net
}

/// Internal signal vector for the CORDIC datapath.
struct Word(Vec<NodeId>);

/// A CORDIC-style conditional shift-add rotation network.
///
/// Each of the `stages` micro-rotations conditionally adds or subtracts the
/// other coordinate shifted right by the stage index, controlled by a
/// direction input `z{k}`:
///
/// ```text
/// x ← x − dir ? (y >> k) : −(y >> k)
/// y ← y + dir ? (x >> k) : −(x >> k)
/// ```
///
/// Inputs: `x0..x(w−1)`, `y0..y(w−1)`, `z0..z(stages−1)`; outputs: the sign
/// bits `xs`, `ys` of the final coordinates. With `w = 8` and `stages = 7`
/// this is the 23-input, 2-output profile of MCNC `cordic`.
///
/// # Panics
///
/// Panics if `width < 2` or `stages == 0` or `stages >= width`.
pub fn cordic_like(width: usize, stages: usize) -> Network {
    assert!(width >= 2 && stages >= 1 && stages < width);
    let mut net = Network::new(format!("cordic{width}x{stages}"));
    let mut x = Word(
        (0..width)
            .map(|i| net.add_input(format!("x{i}")).expect("fresh"))
            .collect(),
    );
    let mut y = Word(
        (0..width)
            .map(|i| net.add_input(format!("y{i}")).expect("fresh"))
            .collect(),
    );
    let dirs: Vec<NodeId> = (0..stages)
        .map(|k| net.add_input(format!("z{k}")).expect("fresh"))
        .collect();

    for (k, &dir) in dirs.iter().enumerate() {
        // Arithmetic shift right by k (sign-extend with the MSB).
        let shift =
            |w: &Word| -> Vec<NodeId> { (0..width).map(|i| w.0[(i + k).min(width - 1)]).collect() };
        let ys = shift(&y);
        let xs = shift(&x);
        // x' = x + (dir ? −ys : ys); y' = y + (dir ? xs : −xs).
        // Conditional negation: operand ⊕ ctrl with carry-in ctrl.
        let x_new = add_conditional(&mut net, &x.0, &ys, dir, true, k, "xa");
        let y_new = add_conditional(&mut net, &y.0, &xs, dir, false, k, "ya");
        x = Word(x_new);
        y = Word(y_new);
    }
    net.add_output("xs", x.0[width - 1]).expect("fresh");
    net.add_output("ys", y.0[width - 1]).expect("fresh");
    net
}

/// Adds `base + (negate_when == ctrl ? −operand : operand)`, returning the
/// result bits. Two's-complement negation = bitwise XOR with the control
/// plus carry-in.
fn add_conditional(
    net: &mut Network,
    base: &[NodeId],
    operand: &[NodeId],
    ctrl: NodeId,
    negate_when_ctrl: bool,
    stage: usize,
    tag: &str,
) -> Vec<NodeId> {
    let width = base.len();
    // flip_i = operand_i ⊕ ctrl (or ⊕ c̄trl): when the control selects
    // negation the operand is complemented and the carry-in is 1.
    type CubeSpec = &'static [(u32, bool)];
    let (xor_on, xor_off): (CubeSpec, CubeSpec) = if negate_when_ctrl {
        (&[(0, true), (1, false)], &[(0, false), (1, true)])
    } else {
        (&[(0, false), (1, false)], &[(0, true), (1, true)])
    };
    let flips: Vec<NodeId> = (0..width)
        .map(|i| {
            let name = net.fresh_name(&format!("{tag}{stage}_f{i}_"));
            net.add_node(name, vec![operand[i], ctrl], sop(&[xor_on, xor_off]))
                .expect("fresh")
        })
        .collect();
    // Carry-in equals the negation condition.
    let cin_name = net.fresh_name(&format!("{tag}{stage}_cin_"));
    let cin = net
        .add_node(cin_name, vec![ctrl], sop(&[&[(0, negate_when_ctrl)]]))
        .expect("fresh");
    let mut carry = cin;
    let mut out = Vec::with_capacity(width);
    for i in 0..width {
        let s_name = net.fresh_name(&format!("{tag}{stage}_s{i}_"));
        let s = net
            .add_node(s_name, vec![base[i], flips[i], carry], sum3())
            .expect("fresh");
        out.push(s);
        if i + 1 < width {
            let c_name = net.fresh_name(&format!("{tag}{stage}_c{i}_"));
            carry = net
                .add_node(c_name, vec![base[i], flips[i], carry], carry3())
                .expect("fresh");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adder_is_correct() {
        let net = ripple_adder(4);
        for a in 0..16u32 {
            for b in 0..16u32 {
                for cin in 0..2u32 {
                    let mut assign = vec![false; 9];
                    for i in 0..4 {
                        assign[i] = a >> i & 1 != 0;
                        assign[4 + i] = b >> i & 1 != 0;
                    }
                    assign[8] = cin != 0;
                    let out = net.eval(&assign).unwrap();
                    let sum = a + b + cin;
                    for (i, &o) in out.iter().take(4).enumerate() {
                        assert_eq!(o, sum >> i & 1 != 0, "a={a} b={b} cin={cin} bit{i}");
                    }
                    assert_eq!(out[4], sum >= 16, "cout a={a} b={b} cin={cin}");
                }
            }
        }
    }

    /// Software model of one CORDIC micro-rotation.
    fn model(width: usize, stages: usize, x0: i64, y0: i64, dirs: u32) -> (bool, bool) {
        let mask = (1i64 << width) - 1;
        let sext = |v: i64| -> i64 {
            let v = v & mask;
            if v >> (width - 1) & 1 == 1 {
                v - (1 << width)
            } else {
                v
            }
        };
        let mut x = sext(x0);
        let mut y = sext(y0);
        for k in 0..stages {
            let dir = dirs >> k & 1 != 0;
            let ys = x_shift(y, k);
            let xs = x_shift(x, k);
            let (nx, ny) = if dir {
                (x - ys, y + xs)
            } else {
                (x + ys, y - xs)
            };
            x = sext(nx);
            y = sext(ny);
        }
        (x < 0, y < 0)
    }

    fn x_shift(v: i64, k: usize) -> i64 {
        v >> k
    }

    #[test]
    fn cordic_matches_software_model() {
        let width = 5;
        let stages = 2;
        let net = cordic_like(width, stages);
        assert_eq!(net.num_inputs(), 2 * width + stages);
        for trial in 0..200u64 {
            // Cheap deterministic pseudo-random assignment.
            let bits = trial.wrapping_mul(0x9e3779b97f4a7c15) >> 16;
            let x0 = (bits & 0x1f) as i64;
            let y0 = (bits >> 5 & 0x1f) as i64;
            let dirs = (bits >> 10 & 0x3) as u32;
            let mut assign = vec![false; 2 * width + stages];
            for i in 0..width {
                assign[i] = x0 >> i & 1 != 0;
                assign[width + i] = y0 >> i & 1 != 0;
            }
            for k in 0..stages {
                assign[2 * width + k] = dirs >> k & 1 != 0;
            }
            let out = net.eval(&assign).unwrap();
            let (xs, ys) = model(width, stages, x0, y0, dirs);
            assert_eq!(out[0], xs, "xs trial={trial} x0={x0} y0={y0} dirs={dirs}");
            assert_eq!(out[1], ys, "ys trial={trial} x0={x0} y0={y0} dirs={dirs}");
        }
    }

    #[test]
    fn cordic_paper_profile() {
        let net = cordic_like(8, 7);
        assert_eq!(net.num_inputs(), 23);
        assert_eq!(net.outputs().len(), 2);
    }
}
