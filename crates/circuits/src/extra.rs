//! Additional well-known circuit generators used by tests and examples.

use tels_logic::{Cube, Network, NodeId, Sop, Var};

fn sop(cubes: &[&[(u32, bool)]]) -> Sop {
    Sop::from_cubes(
        cubes
            .iter()
            .map(|c| Cube::from_literals(c.iter().map(|&(v, p)| (Var(v), p)))),
    )
}

fn nand2() -> Sop {
    // NAND = ā ∨ b̄.
    sop(&[&[(0, false)], &[(1, false)]])
}

/// The ISCAS-85 `c17` benchmark: six NAND2 gates, 5 inputs, 2 outputs.
///
/// The smallest standard benchmark circuit, with its textbook structure:
///
/// ```text
/// g1 = NAND(i1, i3)     g2 = NAND(i3, i4)
/// g3 = NAND(i2, g2)     g4 = NAND(g2, i5)
/// o1 = NAND(g1, g3)     o2 = NAND(g3, g4)
/// ```
pub fn c17() -> Network {
    let mut net = Network::new("c17");
    let i: Vec<NodeId> = (1..=5)
        .map(|k| net.add_input(format!("i{k}")).expect("fresh"))
        .collect();
    let g1 = net
        .add_node("g1", vec![i[0], i[2]], nand2())
        .expect("fresh");
    let g2 = net
        .add_node("g2", vec![i[2], i[3]], nand2())
        .expect("fresh");
    let g3 = net.add_node("g3", vec![i[1], g2], nand2()).expect("fresh");
    let g4 = net.add_node("g4", vec![g2, i[4]], nand2()).expect("fresh");
    let o1 = net.add_node("o1", vec![g1, g3], nand2()).expect("fresh");
    let o2 = net.add_node("o2", vec![g3, g4], nand2()).expect("fresh");
    net.add_output("o1", o1).expect("fresh");
    net.add_output("o2", o2).expect("fresh");
    net
}

/// A 1-bit ALU slice: two operands, carry-in, and a 2-bit opcode selecting
/// AND / OR / XOR / ADD. Outputs the result bit and carry-out (carry-out is
/// meaningful for ADD, zero otherwise).
pub fn alu_slice() -> Network {
    let mut net = Network::new("alu1");
    let a = net.add_input("a").expect("fresh");
    let b = net.add_input("b").expect("fresh");
    let cin = net.add_input("cin").expect("fresh");
    let op0 = net.add_input("op0").expect("fresh");
    let op1 = net.add_input("op1").expect("fresh");

    let and_n = net
        .add_node("and_n", vec![a, b], sop(&[&[(0, true), (1, true)]]))
        .expect("fresh");
    let or_n = net
        .add_node("or_n", vec![a, b], sop(&[&[(0, true)], &[(1, true)]]))
        .expect("fresh");
    let xor_n = net
        .add_node(
            "xor_n",
            vec![a, b],
            sop(&[&[(0, true), (1, false)], &[(0, false), (1, true)]]),
        )
        .expect("fresh");
    // Full-adder sum and carry over (xor_n, cin) and (a, b, cin).
    let sum_n = net
        .add_node(
            "sum_n",
            vec![xor_n, cin],
            sop(&[&[(0, true), (1, false)], &[(0, false), (1, true)]]),
        )
        .expect("fresh");
    let cout_add = net
        .add_node(
            "cout_add",
            vec![a, b, cin],
            sop(&[
                &[(0, true), (1, true)],
                &[(0, true), (2, true)],
                &[(1, true), (2, true)],
            ]),
        )
        .expect("fresh");

    // Result mux over the opcode: 00=AND, 01=OR, 10=XOR, 11=ADD.
    let y = net
        .add_node(
            "y",
            vec![and_n, or_n, xor_n, sum_n, op0, op1],
            sop(&[
                &[(0, true), (4, false), (5, false)],
                &[(1, true), (4, true), (5, false)],
                &[(2, true), (4, false), (5, true)],
                &[(3, true), (4, true), (5, true)],
            ]),
        )
        .expect("fresh");
    // Carry-out only in ADD mode.
    let cout = net
        .add_node(
            "cout",
            vec![cout_add, op0, op1],
            sop(&[&[(0, true), (1, true), (2, true)]]),
        )
        .expect("fresh");
    net.add_output("y", y).expect("fresh");
    net.add_output("cout", cout).expect("fresh");
    net
}

/// A `width`-bit logarithmic barrel shifter (left rotate by the binary
/// shift amount). Inputs: `d0..`, `s0..s(log2 width − 1)`; outputs `q0..`.
///
/// # Panics
///
/// Panics if `width` is not a power of two in `2..=32`.
pub fn barrel_shifter(width: usize) -> Network {
    assert!(width.is_power_of_two() && (2..=32).contains(&width));
    let stages = width.trailing_zeros() as usize;
    let mut net = Network::new(format!("barrel{width}"));
    let mut layer: Vec<NodeId> = (0..width)
        .map(|i| net.add_input(format!("d{i}")).expect("fresh"))
        .collect();
    let sel: Vec<NodeId> = (0..stages)
        .map(|k| net.add_input(format!("s{k}")).expect("fresh"))
        .collect();
    for (k, &s) in sel.iter().enumerate() {
        let shift = 1usize << k;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let stay = layer[i];
            let moved = layer[(i + width - shift) % width];
            // q = s̄·stay ∨ s·moved.
            let name = net.fresh_name(&format!("r{k}_{i}_"));
            let node = if stay == moved {
                stay
            } else {
                net.add_node(
                    name,
                    vec![stay, moved, s],
                    sop(&[&[(0, true), (2, false)], &[(1, true), (2, true)]]),
                )
                .expect("fresh")
            };
            next.push(node);
        }
        layer = next;
    }
    for (i, &q) in layer.iter().enumerate() {
        net.add_output(format!("q{i}"), q).expect("fresh");
    }
    net
}

/// Binary-to-Gray-code converter plus its inverse packed into one netlist:
/// outputs `g0..` (gray of the input) and `v0..` (binary of interpreting
/// the input as gray). XOR-chain-heavy, a stress test for binate splitting.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn gray_code(width: usize) -> Network {
    assert!(width >= 2);
    let mut net = Network::new(format!("gray{width}"));
    let b: Vec<NodeId> = (0..width)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let xor2 = sop(&[&[(0, true), (1, false)], &[(0, false), (1, true)]]);
    // Gray encode: g[i] = b[i] ⊕ b[i+1]; g[msb] = b[msb].
    for i in 0..width {
        if i + 1 < width {
            let g = net
                .add_node(format!("g{i}_n"), vec![b[i], b[i + 1]], xor2.clone())
                .expect("fresh");
            net.add_output(format!("g{i}"), g).expect("fresh");
        } else {
            net.add_output(format!("g{i}"), b[i]).expect("fresh");
        }
    }
    // Gray decode: v[msb] = b[msb]; v[i] = b[i] ⊕ v[i+1] (a serial chain).
    let mut prev = b[width - 1];
    net.add_output(format!("v{}", width - 1), prev)
        .expect("fresh");
    for i in (0..width - 1).rev() {
        let v = net
            .add_node(format!("v{i}_n"), vec![b[i], prev], xor2.clone())
            .expect("fresh");
        net.add_output(format!("v{i}"), v).expect("fresh");
        prev = v;
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c17_matches_reference_model() {
        let net = c17();
        assert_eq!(net.num_inputs(), 5);
        assert_eq!(net.outputs().len(), 2);
        assert_eq!(net.num_logic_nodes(), 6);
        let nand = |x: bool, y: bool| !(x && y);
        for m in 0..32u32 {
            let i: Vec<bool> = (0..5).map(|k| m >> k & 1 != 0).collect();
            let g1 = nand(i[0], i[2]);
            let g2 = nand(i[2], i[3]);
            let g3 = nand(i[1], g2);
            let g4 = nand(g2, i[4]);
            let expect = vec![nand(g1, g3), nand(g3, g4)];
            assert_eq!(net.eval(&i).unwrap(), expect, "minterm {m}");
        }
    }

    #[test]
    fn alu_slice_computes_all_ops() {
        let net = alu_slice();
        for m in 0..32u32 {
            let a = m & 1 != 0;
            let b = m >> 1 & 1 != 0;
            let cin = m >> 2 & 1 != 0;
            let op0 = m >> 3 & 1 != 0;
            let op1 = m >> 4 & 1 != 0;
            let out = net.eval(&[a, b, cin, op0, op1]).unwrap();
            let (expect_y, expect_c) = match (op1, op0) {
                (false, false) => (a && b, false),
                (false, true) => (a || b, false),
                (true, false) => (a ^ b, false),
                (true, true) => {
                    let sum = u32::from(a) + u32::from(b) + u32::from(cin);
                    (sum & 1 != 0, sum >= 2)
                }
            };
            assert_eq!(out[0], expect_y, "y at m={m}");
            assert_eq!(out[1], expect_c, "cout at m={m}");
        }
    }

    #[test]
    fn barrel_shifter_rotates() {
        let width = 8;
        let net = barrel_shifter(width);
        for data in [0b0000_0001u32, 0b1010_0110, 0b1111_0000] {
            for shift in 0..width {
                let mut assign = vec![false; width + 3];
                for (i, slot) in assign.iter_mut().enumerate().take(width) {
                    *slot = data >> i & 1 != 0;
                }
                for k in 0..3 {
                    assign[width + k] = shift >> k & 1 != 0;
                }
                let out = net.eval(&assign).unwrap();
                let rotated = (data << shift | data >> (width - shift)) & 0xff;
                for (i, &o) in out.iter().enumerate() {
                    assert_eq!(
                        o,
                        rotated >> i & 1 != 0,
                        "data {data:08b} shift {shift} bit {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn gray_code_round_trips() {
        let width = 5;
        let net = gray_code(width);
        for value in 0..1u32 << width {
            let assign: Vec<bool> = (0..width).map(|i| value >> i & 1 != 0).collect();
            let out = net.eval(&assign).unwrap();
            // Outputs: g0..g4 then v4, v3..v0 (declaration order).
            let gray = value ^ (value >> 1);
            for (i, &o) in out.iter().enumerate().take(width) {
                assert_eq!(o, gray >> i & 1 != 0, "g{i} of {value}");
            }
            // Decode outputs: find them by name.
            let names: Vec<&str> = net.outputs().iter().map(|(n, _)| n.as_str()).collect();
            let mut decoded = 0u32;
            for i in 0..width {
                let pos = names.iter().position(|&n| n == format!("v{i}")).unwrap();
                if out[pos] {
                    decoded |= 1 << i;
                }
            }
            // Interpreting `value` as gray: binary = prefix-xor from MSB.
            let mut expect = 0u32;
            let mut acc = false;
            for i in (0..width).rev() {
                acc ^= value >> i & 1 != 0;
                if acc {
                    expect |= 1 << i;
                }
            }
            assert_eq!(decoded, expect, "decode of {value:05b}");
        }
    }
}
