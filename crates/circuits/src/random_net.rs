//! Seeded random multi-level network generation.
//!
//! Stands in for the irregular MCNC control-logic benchmarks (`term1`,
//! `pm1`, `x1`, `i10`): random DAGs of small SOP nodes with tunable size,
//! output count, and sharing. Identical options and seed always produce an
//! identical network.

use tels_logic::rng::Xoshiro256;
use tels_logic::{Cube, Network, NodeId, Sop, Var};

/// Parameters for [`random_network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomNetOptions {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of internal logic nodes.
    pub nodes: usize,
    /// Maximum fanins drawn per node (at least 2).
    pub max_fanin: usize,
    /// Maximum cubes per node function (at least 1).
    pub max_cubes: usize,
    /// Out of 100: chance that a literal is complemented.
    pub negation_pct: u32,
    /// Bias (0–100) toward recent nodes as fanins: higher means deeper,
    /// narrower networks.
    pub locality_pct: u32,
}

impl Default for RandomNetOptions {
    fn default() -> Self {
        RandomNetOptions {
            inputs: 16,
            outputs: 8,
            nodes: 48,
            max_fanin: 4,
            max_cubes: 3,
            negation_pct: 30,
            locality_pct: 60,
        }
    }
}

/// Generates a random combinational network from a seed.
///
/// Outputs are taken from the last generated nodes, which makes them deep;
/// every node is reachable-biased but dead logic may exist (callers usually
/// run the optimization scripts first, which sweep it).
///
/// # Panics
///
/// Panics if `inputs < 2`, `nodes < outputs`, or `max_fanin < 2`.
pub fn random_network(name: &str, seed: u64, options: &RandomNetOptions) -> Network {
    assert!(options.inputs >= 2);
    assert!(options.nodes >= options.outputs && options.outputs >= 1);
    assert!(options.max_fanin >= 2);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut net = Network::new(name.to_string());
    let mut signals: Vec<NodeId> = (0..options.inputs)
        .map(|i| net.add_input(format!("i{i}")).expect("fresh"))
        .collect();

    for n in 0..options.nodes {
        let fanin_count = rng.gen_range(2..=options.max_fanin.min(signals.len()));
        // Draw distinct fanins, biased toward recent signals.
        let mut fanins: Vec<NodeId> = Vec::with_capacity(fanin_count);
        let mut guard = 0;
        while fanins.len() < fanin_count && guard < 100 {
            guard += 1;
            let idx = if rng.gen_range(0..100u32) < options.locality_pct
                && signals.len() > options.inputs
            {
                rng.gen_range(signals.len().saturating_sub(options.inputs)..signals.len())
            } else {
                rng.gen_range(0..signals.len())
            };
            if !fanins.contains(&signals[idx]) {
                fanins.push(signals[idx]);
            }
        }
        let k = fanins.len() as u32;
        // Random SOP: each cube draws a non-empty literal subset.
        let n_cubes = rng.gen_range(1..=options.max_cubes);
        let mut cubes = Vec::with_capacity(n_cubes);
        for _ in 0..n_cubes {
            let mut cube = Cube::one();
            for v in 0..k {
                if rng.gen_range(0..100u32) < 60 {
                    let phase = rng.gen_range(0..100u32) >= options.negation_pct;
                    cube.set_literal(Var(v), phase);
                }
            }
            if cube.is_one() {
                // Ensure at least one literal so the node is not constant 1.
                let phase = rng.gen_range(0..100u32) >= options.negation_pct;
                cube.set_literal(Var(rng.gen_range(0..k)), phase);
            }
            cubes.push(cube);
        }
        let mut f = Sop::from_cubes(cubes);
        // Guarantee every declared fanin is in the support (drop the rest).
        let support = f.support();
        let kept: Vec<usize> = (0..fanins.len())
            .filter(|&i| support.contains(Var(i as u32)))
            .collect();
        if kept.len() != fanins.len() {
            let mut map = vec![Var(0); fanins.len()];
            for (new_i, &old_i) in kept.iter().enumerate() {
                map[old_i] = Var(new_i as u32);
            }
            f = f.remap(&map);
            fanins = kept.iter().map(|&i| fanins[i]).collect();
        }
        let node = net
            .add_node(format!("n{n}"), fanins, f)
            .expect("fresh node");
        signals.push(node);
    }
    // Outputs: the last `outputs` generated nodes (the deepest logic).
    let logic_start = options.inputs;
    for o in 0..options.outputs {
        let idx = signals.len() - 1 - o;
        let node = signals[idx.max(logic_start)];
        net.add_output(format!("o{o}"), node).expect("fresh output");
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let opts = RandomNetOptions::default();
        let a = random_network("r", 42, &opts);
        let b = random_network("r", 42, &opts);
        assert_eq!(a.num_logic_nodes(), b.num_logic_nodes());
        for m in [0usize, 1, 0xbeef, 0xffff] {
            let assign: Vec<bool> = (0..opts.inputs).map(|i| m >> (i % 16) & 1 != 0).collect();
            assert_eq!(a.eval(&assign).unwrap(), b.eval(&assign).unwrap());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let opts = RandomNetOptions::default();
        let a = random_network("r", 1, &opts);
        let b = random_network("r", 2, &opts);
        let mut any_diff = false;
        for m in 0..64usize {
            let assign: Vec<bool> = (0..opts.inputs).map(|i| m >> (i % 6) & 1 != 0).collect();
            if a.eval(&assign).unwrap() != b.eval(&assign).unwrap() {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "seeds 1 and 2 produced identical functions");
    }

    #[test]
    fn requested_shape() {
        let opts = RandomNetOptions {
            inputs: 10,
            outputs: 5,
            nodes: 30,
            ..RandomNetOptions::default()
        };
        let net = random_network("shape", 7, &opts);
        assert_eq!(net.num_inputs(), 10);
        assert_eq!(net.outputs().len(), 5);
        assert_eq!(net.num_logic_nodes(), 30);
        assert!(net.topo_order().is_ok());
    }

    #[test]
    fn networks_are_acyclic_across_seeds() {
        let opts = RandomNetOptions::default();
        for seed in 0..10 {
            let net = random_network("acyc", seed, &opts);
            assert!(net.topo_order().is_ok(), "seed {seed} built a cycle");
        }
    }
}
