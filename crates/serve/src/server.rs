//! Transport loops: stdio (single client) and unix socket (concurrent
//! clients, one thread per connection, shared session).

use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tels_metrics::instruments as metrics;

use crate::protocol::{error_reply, read_json_frame, write_json_frame, FrameError};
use crate::ServeSession;

/// Process-wide connection ids for the `tels_serve_frames_total{conn=…}`
/// series. Ids are assigned per connection loop (stdio counts as one), so
/// the series distinguishes chatty peers without any API change.
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(0);

/// Why a connection loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectionEnd {
    /// The peer closed the stream cleanly (EOF at a frame boundary).
    Eof,
    /// The peer sent a `shutdown` request (acknowledged before returning).
    Shutdown,
    /// The stream became unrecoverable (oversized length prefix, or EOF in
    /// the middle of a frame) and was dropped after a best-effort error
    /// reply.
    Aborted,
}

/// Runs the request/reply protocol over one byte stream until the peer
/// disconnects or asks for shutdown.
///
/// Error containment: a frame that parses as a frame but not as JSON gets
/// an error reply and the connection *continues*; an oversized length
/// prefix or a truncated frame cannot be resynchronized, so the connection
/// ends (with an error reply when the stream still accepts one). Neither
/// case takes the session down.
///
/// # Errors
///
/// Only genuine transport failures (write errors, unexpected read errors)
/// surface as `Err`; everything protocol-level is a [`ConnectionEnd`].
pub fn serve_connection(
    session: &ServeSession,
    r: &mut impl Read,
    w: &mut impl Write,
) -> io::Result<ConnectionEnd> {
    let conn = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed) as usize;
    metrics::SERVE_CONNECTIONS_OPEN.add(1);
    let end = serve_frames(session, r, w, conn);
    metrics::SERVE_CONNECTIONS_OPEN.add(-1);
    end
}

fn serve_frames(
    session: &ServeSession,
    r: &mut impl Read,
    w: &mut impl Write,
    conn: usize,
) -> io::Result<ConnectionEnd> {
    loop {
        match read_json_frame(r) {
            Ok(None) => return Ok(ConnectionEnd::Eof),
            Ok(Some(Ok(doc))) => {
                metrics::SERVE_FRAMES.inc(conn);
                let (reply, shutdown) = session.handle(&doc);
                write_json_frame(w, &reply)?;
                if shutdown {
                    return Ok(ConnectionEnd::Shutdown);
                }
            }
            Ok(Some(Err(parse_err))) => {
                session.note_bad_frame();
                write_json_frame(
                    w,
                    &error_reply(None, &format!("malformed frame: {parse_err}")),
                )?;
            }
            Err(FrameError::TooLarge(n)) => {
                session.note_bad_frame();
                let _ = write_json_frame(
                    w,
                    &error_reply(None, &format!("frame length {n} exceeds cap; closing")),
                );
                return Ok(ConnectionEnd::Aborted);
            }
            Err(FrameError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                session.note_bad_frame();
                return Ok(ConnectionEnd::Aborted);
            }
            Err(FrameError::Io(e)) => return Err(e),
        }
    }
}

/// Serves one client over stdin/stdout — the embedding mode, where a build
/// system holds the daemon as a child process. Saves the cache file (when
/// configured) before returning, whether the client disconnected or asked
/// for shutdown.
///
/// # Errors
///
/// Transport failures on stdin/stdout, or a failure writing the cache file.
pub fn serve_stdio(session: &ServeSession) -> io::Result<ConnectionEnd> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let end = serve_connection(session, &mut stdin.lock(), &mut stdout.lock())?;
    session.persist_now()?;
    session.persist_metrics_now()?;
    Ok(end)
}

/// Listens on a unix socket and serves concurrent clients; jobs from all
/// connections share the session's pool and caches. Returns once a client
/// sends `shutdown`: the listener stops accepting, in-flight connections
/// are joined, and the cache file (when configured) is saved. A stale
/// socket file at `path` is replaced.
///
/// # Errors
///
/// Bind/accept failures, or a failure writing the cache file at shutdown.
pub fn serve_unix(session: Arc<ServeSession>, path: &Path) -> io::Result<()> {
    // Replace a stale socket from a previous run; bind() refuses to reuse
    // the inode otherwise.
    if path.exists() {
        std::fs::remove_file(path)?;
    }
    let listener = UnixListener::bind(path)?;
    // Flight-recorder sampler: one frame per interval until shutdown, so
    // `metrics` with `recorder: true` (and the post-mortem dump) shows a
    // rolling window of recent daemon state, not just on-demand snapshots.
    let sampler = session.metrics_on().then(|| {
        let session = Arc::clone(&session);
        std::thread::spawn(move || {
            while !session.shutting_down() {
                session.record_frame();
                // Sleep in short ticks so shutdown isn't delayed by a
                // full interval at coarse sampling rates.
                let mut left = session.metrics_interval();
                while !left.is_zero() && !session.shutting_down() {
                    let tick = left.min(std::time::Duration::from_millis(50));
                    std::thread::sleep(tick);
                    left -= tick;
                }
            }
        })
    });
    let mut connections = Vec::new();
    for stream in listener.incoming() {
        if session.shutting_down() {
            break;
        }
        let stream = stream?;
        let session = Arc::clone(&session);
        let wake = path.to_path_buf();
        connections.push(std::thread::spawn(move || {
            let mut reader = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            };
            let mut writer = stream;
            let end = serve_connection(&session, &mut reader, &mut writer);
            if matches!(end, Ok(ConnectionEnd::Shutdown)) {
                // The accept loop is blocked in `incoming()`; poke it with
                // a throwaway connection so it observes the shutdown flag.
                let _ = UnixStream::connect(&wake);
            }
        }));
    }
    for handle in connections {
        let _ = handle.join();
    }
    if let Some(handle) = sampler {
        let _ = handle.join();
    }
    session.persist_now()?;
    session.persist_metrics_now()?;
    std::fs::remove_file(path).ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{synth_request_json, write_frame, JobRequest};
    use crate::ServeOptions;
    use tels_trace::json::Json;

    fn read_reply(stream: &mut &[u8]) -> Json {
        let inner = read_json_frame(stream).unwrap().expect("a reply frame");
        inner.expect("reply must be valid JSON")
    }

    #[test]
    fn connection_survives_malformed_frames() {
        let session = ServeSession::new(ServeOptions::default()).unwrap();
        let mut input = Vec::new();
        write_frame(&mut input, br#"{"op": "ping"}"#).unwrap();
        write_frame(&mut input, b"{this is not json").unwrap();
        let req = JobRequest {
            blif: ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n".to_string(),
            ..JobRequest::default()
        };
        write_frame(&mut input, synth_request_json(&req).to_string().as_bytes()).unwrap();
        let mut output = Vec::new();
        let end = serve_connection(&session, &mut input.as_slice(), &mut output).unwrap();
        assert_eq!(end, ConnectionEnd::Eof);
        let mut replies = output.as_slice();
        let pong = read_reply(&mut replies);
        assert_eq!(pong.get("pong"), Some(&Json::Bool(true)));
        let err = read_reply(&mut replies);
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        let synth = read_reply(&mut replies);
        assert_eq!(synth.get("ok"), Some(&Json::Bool(true)), "{synth}");
        assert!(synth.get("tnet").and_then(Json::as_str).is_some());
        let stats = session.stats_json();
        assert_eq!(stats.get("bad_frames").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn oversized_frame_aborts_with_error_reply() {
        let session = ServeSession::new(ServeOptions::default()).unwrap();
        let mut input = (crate::protocol::MAX_FRAME + 1).to_be_bytes().to_vec();
        input.extend_from_slice(b"junk");
        let mut output = Vec::new();
        let end = serve_connection(&session, &mut input.as_slice(), &mut output).unwrap();
        assert_eq!(end, ConnectionEnd::Aborted);
        let mut replies = output.as_slice();
        let err = read_reply(&mut replies);
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
    }

    #[test]
    fn shutdown_request_ends_connection() {
        let session = ServeSession::new(ServeOptions::default()).unwrap();
        let mut input = Vec::new();
        write_frame(&mut input, br#"{"op": "shutdown"}"#).unwrap();
        write_frame(&mut input, br#"{"op": "ping"}"#).unwrap();
        let mut output = Vec::new();
        let end = serve_connection(&session, &mut input.as_slice(), &mut output).unwrap();
        assert_eq!(end, ConnectionEnd::Shutdown);
        assert!(session.shutting_down());
        let mut replies = output.as_slice();
        let ack = read_reply(&mut replies);
        assert_eq!(ack.get("shutting_down"), Some(&Json::Bool(true)));
        // The trailing ping was never processed.
        assert!(read_json_frame(&mut replies).unwrap().is_none());
    }
}
