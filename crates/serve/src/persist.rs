//! Disk persistence for the realization and negative caches.
//!
//! The cache file is a versioned binary snapshot of every per-configuration
//! cache the daemon holds. Entries are only reusable under the exact
//! configuration fingerprint they were computed with ([`CacheKey`]), so the
//! file stores one *section* per fingerprint and a loader only feeds each
//! section to caches created for that same fingerprint. Since version 2 a
//! section carries two entry lists: realization-cache entries and the
//! tier-0.5 negative cache's Chow-canonical rejection signatures.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8 bytes   b"TELSRC\0\0"
//! version    u32       bumped whenever the layout or entry semantics change
//! sections   u32
//! per section:
//!   fingerprint  5 × u64   CacheKey::encode()
//!   entries      u64
//!   per entry:
//!     key_words  u32
//!     key        key_words × u64
//!     tag        u8          0 = not a threshold function, 1 = realization
//!     if tag == 1:
//!       weights  u32, then that many i64
//!       threshold i64
//!   neg_entries  u64        (since version 2)
//!   per neg entry:
//!     key_words  u32
//!     key        key_words × u64
//! ```
//!
//! A file with the wrong magic, an unknown version, or a truncated body is
//! *rejected* with a descriptive [`PersistError`] — never a panic and never
//! a partial load. Version-1 files are rejected too (not migrated): the
//! caches are a pure performance artifact, so "delete and start fresh" is
//! always safe. Saves go through a temp file + rename so a crash mid-save
//! (or a concurrent reader) never observes a half-written file.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use tels_core::{CacheKey, CanonicalRealization, NegativeCache, RealizationCache};

/// File signature.
pub const MAGIC: &[u8; 8] = b"TELSRC\0\0";

/// Current layout version. Bumped 1 → 2 when sections gained the tier-0.5
/// negative-cache entry list.
pub const VERSION: u32 = 2;

/// Why a cache file could not be loaded.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written.
    Io(io::Error),
    /// The file does not start with [`MAGIC`] — not a cache file.
    BadMagic,
    /// The file is a cache file from an incompatible layout version.
    BadVersion {
        /// Version found in the file header.
        found: u32,
    },
    /// The body is truncated or internally inconsistent.
    Corrupt(String),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "cache file i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not a tels cache file (bad magic)"),
            PersistError::BadVersion { found } => write!(
                f,
                "cache file version {found} is not supported (expected {VERSION}); \
                 delete the file to start fresh"
            ),
            PersistError::Corrupt(what) => write!(f, "cache file is corrupt: {what}"),
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> PersistError {
        PersistError::Io(e)
    }
}

/// One persisted section: a configuration fingerprint, its realization
/// entries, and its negative-cache signatures.
pub type Section = (
    CacheKey,
    Vec<(Vec<u64>, Option<CanonicalRealization>)>,
    Vec<Vec<u64>>,
);

/// Serializes cache sections to `path` atomically (temp file + rename).
/// Returns the total number of entries written (realizations plus negative
/// signatures). Snapshots are taken here, so callers may keep inserting
/// into the caches concurrently.
pub fn save(
    path: &Path,
    sections: &[(CacheKey, &RealizationCache, &NegativeCache)],
) -> io::Result<usize> {
    let mut body: Vec<u8> = Vec::new();
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&VERSION.to_le_bytes());
    body.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut total = 0usize;
    for (fingerprint, cache, neg) in sections {
        for word in fingerprint.encode() {
            body.extend_from_slice(&word.to_le_bytes());
        }
        let entries = cache.snapshot();
        body.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        total += entries.len();
        for (key, value) in entries {
            body.extend_from_slice(&(key.len() as u32).to_le_bytes());
            for word in &key {
                body.extend_from_slice(&word.to_le_bytes());
            }
            match value {
                None => body.push(0),
                Some(real) => {
                    body.push(1);
                    body.extend_from_slice(&(real.weights.len() as u32).to_le_bytes());
                    for w in &real.weights {
                        body.extend_from_slice(&w.to_le_bytes());
                    }
                    body.extend_from_slice(&real.threshold.to_le_bytes());
                }
            }
        }
        let neg_entries = neg.snapshot();
        body.extend_from_slice(&(neg_entries.len() as u64).to_le_bytes());
        total += neg_entries.len();
        for key in neg_entries {
            body.extend_from_slice(&(key.len() as u32).to_le_bytes());
            for word in &key {
                body.extend_from_slice(&word.to_le_bytes());
            }
        }
    }
    // Atomic replace: a crash mid-write leaves the old file intact, and a
    // concurrent load never sees a torn body.
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(total)
}

/// A bounds-checked little-endian cursor over the file body.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| PersistError::Corrupt(format!("truncated while reading {what}")))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn i64(&mut self, what: &str) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }
}

/// Loads a cache file, validating magic, version, and body integrity.
pub fn load(path: &Path) -> Result<Vec<Section>, PersistError> {
    let data = fs::read(path)?;
    let mut c = Cursor {
        data: &data,
        pos: 0,
    };
    if c.take(MAGIC.len(), "magic")? != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = c.u32("version")?;
    if version != VERSION {
        return Err(PersistError::BadVersion { found: version });
    }
    let sections = c.u32("section count")?;
    let mut out: Vec<Section> = Vec::with_capacity(sections as usize);
    for _ in 0..sections {
        let mut words = [0u64; 5];
        for w in &mut words {
            *w = c.u64("fingerprint")?;
        }
        let fingerprint = CacheKey::decode(words);
        let count = c.u64("entry count")?;
        // Each entry is at least key_words(4) + tag(1) bytes; reject counts
        // the remaining body cannot possibly hold before allocating.
        if count > (data.len() - c.pos) as u64 {
            return Err(PersistError::Corrupt(format!(
                "entry count {count} exceeds file size"
            )));
        }
        let mut entries = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let key_words = c.u32("key length")? as usize;
            let mut key = Vec::with_capacity(key_words.min(1 << 16));
            for _ in 0..key_words {
                key.push(c.u64("key word")?);
            }
            let value = match c.u8("entry tag")? {
                0 => None,
                1 => {
                    let n = c.u32("weight count")? as usize;
                    let mut weights = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        weights.push(c.i64("weight")?);
                    }
                    let threshold = c.i64("threshold")?;
                    Some(CanonicalRealization { weights, threshold })
                }
                tag => {
                    return Err(PersistError::Corrupt(format!("unknown entry tag {tag}")));
                }
            };
            entries.push((key, value));
        }
        let neg_count = c.u64("negative entry count")?;
        if neg_count > (data.len() - c.pos) as u64 {
            return Err(PersistError::Corrupt(format!(
                "negative entry count {neg_count} exceeds file size"
            )));
        }
        let mut neg_entries = Vec::with_capacity(neg_count as usize);
        for _ in 0..neg_count {
            let key_words = c.u32("negative key length")? as usize;
            let mut key = Vec::with_capacity(key_words.min(1 << 16));
            for _ in 0..key_words {
                key.push(c.u64("negative key word")?);
            }
            neg_entries.push(key);
        }
        out.push((fingerprint, entries, neg_entries));
    }
    if c.pos != data.len() {
        return Err(PersistError::Corrupt(format!(
            "{} trailing bytes after last section",
            data.len() - c.pos
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tels_core::TelsConfig;

    fn sample_cache() -> RealizationCache {
        let cache = RealizationCache::new();
        cache.insert(
            vec![2, 0b01, 0b10],
            Some(CanonicalRealization {
                weights: vec![1, 1],
                threshold: 1,
            }),
        );
        cache.insert(vec![3, 0b001, 0b010, 0b100], None);
        cache.insert(
            vec![1, 0b1],
            Some(CanonicalRealization {
                weights: vec![1],
                threshold: 1,
            }),
        );
        cache
    }

    fn sample_neg() -> NegativeCache {
        let neg = NegativeCache::new();
        neg.insert(vec![6, 0xdead, 0xbeef]);
        neg.insert(vec![7, 1, 2, 3]);
        neg
    }

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tels-persist-{name}-{}", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_entries() {
        let cache = sample_cache();
        let neg = sample_neg();
        let key = TelsConfig::default().cache_key();
        let path = tmp_path("roundtrip");
        save(&path, &[(key, &cache, &neg)]).unwrap();
        let sections = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, key);
        assert_eq!(sections[0].1, cache.snapshot());
        assert_eq!(sections[0].2, neg.snapshot());
    }

    #[test]
    fn empty_negative_cache_roundtrips() {
        let cache = sample_cache();
        let neg = NegativeCache::new();
        let key = TelsConfig::default().cache_key();
        let path = tmp_path("empty-neg");
        save(&path, &[(key, &cache, &neg)]).unwrap();
        let sections = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(sections[0].2.is_empty());
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = tmp_path("magic");
        std::fs::write(&path, b"NOTACACHEFILE").unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::BadMagic), "{err}");
    }

    #[test]
    fn wrong_version_rejected() {
        let cache = sample_cache();
        let neg = sample_neg();
        let key = TelsConfig::default().cache_key();
        let path = tmp_path("version");
        save(&path, &[(key, &cache, &neg)]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&(VERSION + 7).to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, PersistError::BadVersion { found } if found == VERSION + 7),
            "{err}"
        );
    }

    #[test]
    fn version_one_files_rejected() {
        // A pre-tier-0.5 file (version 1) has no negative entry lists; the
        // loader must refuse it outright rather than misparse the body.
        let cache = sample_cache();
        let neg = sample_neg();
        let key = TelsConfig::default().cache_key();
        let path = tmp_path("v1");
        save(&path, &[(key, &cache, &neg)]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(err, PersistError::BadVersion { found: 1 }),
            "{err}"
        );
    }

    #[test]
    fn truncated_body_rejected() {
        let cache = sample_cache();
        let neg = sample_neg();
        let key = TelsConfig::default().cache_key();
        let path = tmp_path("trunc");
        save(&path, &[(key, &cache, &neg)]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() / 2, 13] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(load(&path), Err(PersistError::Corrupt(_))),
                "cut at {cut} must be rejected as corrupt"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_garbage_rejected() {
        let cache = sample_cache();
        let neg = sample_neg();
        let key = TelsConfig::default().cache_key();
        let path = tmp_path("trailing");
        save(&path, &[(key, &cache, &neg)]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"extra");
        std::fs::write(&path, &bytes).unwrap();
        let err = load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Corrupt(_)), "{err}");
    }
}
