//! Length-prefixed JSON framing and the request/response schema.
//!
//! Every message on a serve connection — either direction — is one frame:
//! a 4-byte big-endian length followed by that many bytes of UTF-8 JSON
//! (the in-tree [`tels_trace::json`] value; no external serializer). The
//! length prefix makes message boundaries explicit on a byte stream, so a
//! client can pipeline requests and the daemon never scans for delimiters
//! inside payloads.
//!
//! Error containment is per-frame: malformed JSON inside a well-formed
//! frame yields an error *reply* and the connection continues; a frame
//! whose length prefix is oversized is unrecoverable (the stream can no
//! longer be resynchronized) and closes the connection after an error
//! reply.

use std::io::{self, Read, Write};

use tels_core::{SplitHeuristic, SynthStrategy, TelsConfig};
use tels_trace::json::Json;

/// Hard cap on a frame payload (16 MiB): far above any legitimate netlist,
/// small enough that a garbage length prefix cannot trigger a huge
/// allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (including EOF mid-frame).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`]; the stream cannot be
    /// resynchronized.
    TooLarge(u32),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF exactly at a
/// frame boundary); EOF inside a frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            // Distinguish "no more frames" from "frame cut short": probe
            // whether any length bytes arrived. `read_exact` leaves the
            // buffer unspecified on error, so re-read conservatively —
            // a clean close is the common case and reads zero bytes.
            return Ok(None);
        }
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_be_bytes(len);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    tels_metrics::instruments::SERVE_BYTES_IN.add(4 + u64::from(len));
    Ok(Some(payload))
}

/// Writes one frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    tels_metrics::instruments::SERVE_BYTES_OUT.add(4 + u64::from(len));
    w.flush()
}

/// Serializes a JSON value into one frame.
pub fn write_json_frame(w: &mut impl Write, value: &Json) -> io::Result<()> {
    write_frame(w, value.to_string().as_bytes())
}

/// Reads one frame and parses it as JSON. The outer `Option`/`FrameError`
/// mirror [`read_frame`]; the inner `Result` is a *recoverable* parse
/// failure (reply with an error, keep the connection).
pub fn read_json_frame(r: &mut impl Read) -> Result<Option<Result<Json, String>>, FrameError> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let parsed = match std::str::from_utf8(&payload) {
        Ok(text) => tels_trace::json::parse(text),
        Err(e) => Err(format!("frame is not UTF-8: {e}")),
    };
    Ok(Some(parsed))
}

/// One synthesis job.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen id echoed in the reply (assigned by the session when
    /// absent).
    pub id: Option<u64>,
    /// The circuit, as BLIF text.
    pub blif: String,
    /// Apply `script_algebraic` before synthesis — the required input form
    /// (§V) and what one-shot `tels synth` does by default.
    pub factor: bool,
    /// Additionally verify the result against the input by simulation
    /// (what one-shot `tels synth` always does; off by default here for
    /// throughput).
    pub verify: bool,
    /// Synthesis configuration (defaults + any per-request overrides).
    pub config: TelsConfig,
}

impl Default for JobRequest {
    fn default() -> JobRequest {
        JobRequest {
            id: None,
            blif: String::new(),
            factor: true,
            verify: false,
            config: TelsConfig::default(),
        }
    }
}

/// A parsed request frame.
#[derive(Debug)]
pub enum Request {
    /// Synthesize one circuit.
    Synth(Box<JobRequest>),
    /// Liveness probe.
    Ping,
    /// Server statistics snapshot.
    Stats,
    /// Live metrics snapshot (JSON or Prometheus text exposition),
    /// optionally with the flight-recorder ring.
    Metrics {
        /// Render Prometheus text format instead of the JSON snapshot.
        prometheus: bool,
        /// Include the flight-recorder ring dump in the reply.
        recorder: bool,
    },
    /// Save the cache (when configured) and stop the server.
    Shutdown,
}

/// Non-panicking configuration validation (wire requests must never be
/// able to trip the library's `assert_valid`).
pub fn validate_config(config: &TelsConfig) -> Result<(), String> {
    if config.psi < 2 {
        return Err("psi must be at least 2".to_string());
    }
    if config.delta_on < 0 {
        return Err("delta_on must be non-negative".to_string());
    }
    if config.delta_off < 1 {
        return Err("delta_off must be at least 1".to_string());
    }
    if config.weight_cap.is_some_and(|cap| cap < 1) {
        return Err("weight_cap must be at least 1".to_string());
    }
    Ok(())
}

fn field_u64(doc: &Json, key: &str) -> Result<Option<u64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn field_i64(doc: &Json, key: &str) -> Result<Option<i64>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if n.fract() == 0.0 => Ok(Some(*n as i64)),
        Some(_) => Err(format!("`{key}` must be an integer")),
    }
}

fn field_bool(doc: &Json, key: &str) -> Result<Option<bool>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("`{key}` must be a boolean")),
    }
}

/// Applies the `config` object of a synth request on top of the defaults.
fn parse_config(doc: &Json) -> Result<TelsConfig, String> {
    let mut config = TelsConfig::default();
    if let Some(v) = field_u64(doc, "psi")? {
        config.psi = v as usize;
    }
    if let Some(v) = field_i64(doc, "delta_on")? {
        config.delta_on = v;
    }
    if let Some(v) = field_i64(doc, "delta_off")? {
        config.delta_off = v;
    }
    if let Some(v) = field_i64(doc, "weight_cap")? {
        config.weight_cap = Some(v);
    }
    if let Some(v) = field_bool(doc, "use_cache")? {
        config.use_cache = v;
    }
    if let Some(v) = field_bool(doc, "use_theorem1")? {
        config.use_theorem1 = v;
    }
    if let Some(v) = field_bool(doc, "use_int_solver")? {
        config.use_int_solver = v;
    }
    if let Some(v) = field_bool(doc, "use_tier0")? {
        config.use_tier0 = v;
    }
    if let Some(v) = field_bool(doc, "use_tier05")? {
        config.use_tier05 = v;
    }
    if let Some(v) = field_u64(doc, "parallel_min_nodes")? {
        config.parallel_min_nodes = v as usize;
    }
    match doc.get("strategy").and_then(Json::as_str) {
        None => {}
        Some("paper") => config.strategy = SynthStrategy::PaperBackward,
        Some("shannon") => config.strategy = SynthStrategy::Shannon,
        Some(other) => return Err(format!("unknown strategy `{other}`")),
    }
    match doc.get("split").and_then(Json::as_str) {
        None => {}
        Some("frequency") => config.split_heuristic = SplitHeuristic::Frequency,
        Some("halves") => config.split_heuristic = SplitHeuristic::Halves,
        Some(other) => return Err(format!("unknown split heuristic `{other}`")),
    }
    validate_config(&config)?;
    Ok(config)
}

/// Parses a request frame. Errors are recoverable: the server replies with
/// the message and keeps the connection.
pub fn parse_request(doc: &Json) -> Result<Request, String> {
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request must be an object with a string `op`")?;
    match op {
        "ping" => Ok(Request::Ping),
        "stats" => Ok(Request::Stats),
        "metrics" => {
            let prometheus = match doc.get("format").and_then(Json::as_str) {
                None | Some("json") => false,
                Some("prometheus") => true,
                Some(other) => return Err(format!("unknown metrics format `{other}`")),
            };
            Ok(Request::Metrics {
                prometheus,
                recorder: field_bool(doc, "recorder")?.unwrap_or(false),
            })
        }
        "shutdown" => Ok(Request::Shutdown),
        "synth" => {
            let blif = doc
                .get("blif")
                .and_then(Json::as_str)
                .ok_or("synth request requires a `blif` string")?
                .to_string();
            let config = match doc.get("config") {
                None | Some(Json::Null) => TelsConfig::default(),
                Some(cfg) => parse_config(cfg)?,
            };
            Ok(Request::Synth(Box::new(JobRequest {
                id: field_u64(doc, "id")?,
                blif,
                factor: field_bool(doc, "factor")?.unwrap_or(true),
                verify: field_bool(doc, "verify")?.unwrap_or(false),
                config,
            })))
        }
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Builds the JSON body of a synth request (the client side of
/// [`parse_request`]). Only non-default config fields are emitted.
pub fn synth_request_json(req: &JobRequest) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![
        ("op".to_string(), Json::str("synth")),
        ("blif".to_string(), Json::str(req.blif.clone())),
    ];
    if let Some(id) = req.id {
        pairs.push(("id".to_string(), Json::Num(id as f64)));
    }
    if !req.factor {
        pairs.push(("factor".to_string(), Json::Bool(false)));
    }
    if req.verify {
        pairs.push(("verify".to_string(), Json::Bool(true)));
    }
    let d = TelsConfig::default();
    let c = &req.config;
    let mut cfg: Vec<(String, Json)> = Vec::new();
    let mut num = |k: &str, v: f64| cfg.push((k.to_string(), Json::Num(v)));
    if c.psi != d.psi {
        num("psi", c.psi as f64);
    }
    if c.delta_on != d.delta_on {
        num("delta_on", c.delta_on as f64);
    }
    if c.delta_off != d.delta_off {
        num("delta_off", c.delta_off as f64);
    }
    if let Some(cap) = c.weight_cap {
        num("weight_cap", cap as f64);
    }
    if c.parallel_min_nodes != d.parallel_min_nodes {
        num("parallel_min_nodes", c.parallel_min_nodes as f64);
    }
    for (key, ours, default) in [
        ("use_cache", c.use_cache, d.use_cache),
        ("use_theorem1", c.use_theorem1, d.use_theorem1),
        ("use_int_solver", c.use_int_solver, d.use_int_solver),
        ("use_tier0", c.use_tier0, d.use_tier0),
        ("use_tier05", c.use_tier05, d.use_tier05),
    ] {
        if ours != default {
            cfg.push((key.to_string(), Json::Bool(ours)));
        }
    }
    if c.strategy != d.strategy {
        cfg.push((
            "strategy".to_string(),
            Json::str(match c.strategy {
                SynthStrategy::PaperBackward => "paper",
                SynthStrategy::Shannon => "shannon",
            }),
        ));
    }
    if c.split_heuristic != d.split_heuristic {
        cfg.push((
            "split".to_string(),
            Json::str(match c.split_heuristic {
                SplitHeuristic::Frequency => "frequency",
                SplitHeuristic::Halves => "halves",
            }),
        ));
    }
    if !cfg.is_empty() {
        pairs.push(("config".to_string(), Json::Obj(cfg)));
    }
    Json::Obj(pairs)
}

/// Builds the JSON body of a `metrics` request (the client side of
/// [`parse_request`]).
pub fn metrics_request_json(prometheus: bool, recorder: bool) -> Json {
    let mut pairs: Vec<(String, Json)> = vec![("op".to_string(), Json::str("metrics"))];
    if prometheus {
        pairs.push(("format".to_string(), Json::str("prometheus")));
    }
    if recorder {
        pairs.push(("recorder".to_string(), Json::Bool(true)));
    }
    Json::Obj(pairs)
}

/// Builds an error reply.
pub fn error_reply(id: Option<u64>, message: &str) -> Json {
    let mut pairs: Vec<(String, Json)> = Vec::new();
    if let Some(id) = id {
        pairs.push(("id".to_string(), Json::Num(id as f64)));
    }
    pairs.push(("ok".to_string(), Json::Bool(false)));
    pairs.push(("error".to_string(), Json::str(message)));
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\": \"ping\"}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"op\": \"ping\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"garbage");
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = 100u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"short");
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn malformed_json_is_recoverable() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{not json").unwrap();
        let inner = read_json_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert!(inner.is_err());
    }

    #[test]
    fn synth_request_roundtrip() {
        let req = JobRequest {
            id: Some(42),
            blif: ".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n".to_string(),
            factor: false,
            verify: true,
            config: TelsConfig {
                psi: 5,
                use_tier0: false,
                use_tier05: false,
                ..TelsConfig::default()
            },
        };
        let doc = synth_request_json(&req);
        match parse_request(&doc).unwrap() {
            Request::Synth(parsed) => {
                assert_eq!(parsed.id, Some(42));
                assert_eq!(parsed.blif, req.blif);
                assert!(!parsed.factor);
                assert!(parsed.verify);
                assert_eq!(parsed.config, req.config);
            }
            other => panic!("expected synth, got {other:?}"),
        }
    }

    #[test]
    fn bad_requests_are_errors_not_panics() {
        for bad in [
            r#"{"no_op": 1}"#,
            r#"{"op": "warp"}"#,
            r#"{"op": "synth"}"#,
            r#"{"op": "synth", "blif": ".model m\n.end\n", "config": {"psi": 1}}"#,
            r#"{"op": "synth", "blif": ".model m\n.end\n", "config": {"delta_off": 0}}"#,
            r#"{"op": "synth", "blif": ".model m\n.end\n", "config": {"strategy": "magic"}}"#,
        ] {
            let doc = tels_trace::json::parse(bad).unwrap();
            assert!(parse_request(&doc).is_err(), "{bad} should be rejected");
        }
    }
}
