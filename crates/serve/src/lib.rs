//! `tels serve`: a batched synthesis daemon.
//!
//! One-shot `tels synth` pays its startup costs — tier-0 oracle table
//! construction, thread spawning, and above all an empty realization cache —
//! on every invocation. This crate amortizes them across jobs: a
//! [`ServeSession`] owns one work-stealing [`Pool`](tels_core::sched::Pool)
//! of workers and one [`RealizationCache`] per configuration fingerprint
//! ([`CacheKey`]), accepts synthesis jobs over a length-prefixed JSON
//! protocol ([`protocol`]), and optionally persists the caches to disk
//! between runs ([`persist`]).
//!
//! # Determinism contract
//!
//! A job's `.tnet` output is byte-identical to what a one-shot `tels synth`
//! run of the same input and configuration produces, at any pool width,
//! with a cold or pre-warmed cache. This follows from the core invariants:
//! cache entries are pure functions of their canonical key plus the
//! [`CacheKey`] fields, warming is advisory (it only changes *when* answers
//! are computed), and [`synthesize_with_shared_caches`] applies exactly the
//! one-shot cache-engagement gate. The serve layer's contribution is
//! discipline: caches — the realization cache and the tier-0.5 negative
//! cache alike — are keyed by configuration fingerprint so a job can never
//! observe entries computed under different δ or solver limits.
//!
//! # Transports
//!
//! [`serve_stdio`] runs the protocol over stdin/stdout (one client, e.g.
//! a build system holding a child process). [`serve_unix`] listens on a
//! unix socket and serves concurrent clients, one thread per connection;
//! jobs from all connections share the pool and caches. A `shutdown`
//! request from any client stops the listener, and the session saves its
//! caches if a cache file is configured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod persist;
pub mod protocol;

mod client;
mod server;

pub use client::Client;
pub use server::{serve_connection, serve_stdio, serve_unix, ConnectionEnd};

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tels_core::sched::Pool;
use tels_core::{
    prewarm_tier0, synthesize_with_shared_caches, warm_on_pool, CacheKey, NegativeCache,
    RealizationCache, SynthStats, ThresholdNetwork,
};
use tels_logic::blif;
use tels_logic::opt::script_algebraic;
use tels_metrics::{instruments as metrics, FlightRecorder};
use tels_trace::json::Json;
use tels_trace::Histogram;

use protocol::{error_reply, parse_request, validate_config, JobRequest, Request};

/// Daemon construction options.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Worker threads in the shared pool (`0` = one per hardware thread).
    pub threads: usize,
    /// Cache persistence file: loaded at startup when present, saved on
    /// shutdown and by [`ServeSession::persist_now`].
    pub cache_file: Option<PathBuf>,
    /// Enable live metrics collection ([`tels_metrics::enable`]) for this
    /// process, the periodic flight-recorder sampler, and final-snapshot
    /// persistence next to the cache file. Off by default — with metrics
    /// disabled every instrumentation site is a single relaxed load.
    pub metrics_enabled: bool,
    /// Flight-recorder sampling interval in milliseconds (`0` = the 1 Hz
    /// default).
    pub metrics_interval_ms: u64,
    /// Flight-recorder ring capacity in frames (`0` = the default of 120,
    /// i.e. two minutes of history at 1 Hz).
    pub recorder_capacity: usize,
}

/// Mutable server counters (everything behind one short-held lock).
#[derive(Debug, Default)]
struct Counters {
    jobs_ok: u64,
    jobs_failed: u64,
    bad_frames: u64,
    latency_us: Histogram,
}

/// A completed synthesis job.
#[derive(Debug)]
pub struct JobReply {
    /// The job id (client-chosen or session-assigned).
    pub id: u64,
    /// The synthesized network.
    pub tn: ThresholdNetwork,
    /// Run statistics (warming counters merged in).
    pub stats: SynthStats,
    /// Wall-clock latency of the job inside the session, in microseconds.
    pub micros: u64,
}

/// A long-lived synthesis session: shared worker pool, per-configuration
/// realization caches, job counters, and optional disk persistence.
///
/// Transport-independent — [`serve_stdio`]/[`serve_unix`] drive it over
/// byte streams, and in-process callers ([`Client`] alternatives like the
/// fuzz harness and benches) call [`ServeSession::submit`] directly.
pub struct ServeSession {
    pool: Pool,
    caches: Mutex<HashMap<CacheKey, Arc<RealizationCache>>>,
    /// Tier-0.5 negative caches, keyed like `caches`: a rejection proof is
    /// only reusable under the margins and limits it was computed with.
    negs: Mutex<HashMap<CacheKey, Arc<NegativeCache>>>,
    counters: Mutex<Counters>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    cache_file: Option<PathBuf>,
    started: Instant,
    metrics_on: bool,
    metrics_interval: Duration,
    recorder: FlightRecorder,
}

impl ServeSession {
    /// Builds a session: prewarms the tier-0 oracle, spawns the worker
    /// pool, and loads the cache file when one is configured and present.
    ///
    /// # Errors
    ///
    /// A configured cache file that exists but fails validation (wrong
    /// magic, incompatible version, truncated body) is rejected with a
    /// descriptive message — delete or move the file to start fresh. A
    /// *missing* cache file is not an error.
    pub fn new(opts: ServeOptions) -> Result<ServeSession, String> {
        prewarm_tier0();
        let threads = if opts.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            opts.threads
        };
        if opts.metrics_enabled {
            tels_metrics::enable();
        }
        let session = ServeSession {
            pool: Pool::new(threads),
            caches: Mutex::new(HashMap::new()),
            negs: Mutex::new(HashMap::new()),
            counters: Mutex::new(Counters::default()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            cache_file: opts.cache_file,
            started: Instant::now(),
            metrics_on: opts.metrics_enabled,
            metrics_interval: Duration::from_millis(if opts.metrics_interval_ms == 0 {
                1000
            } else {
                opts.metrics_interval_ms
            }),
            recorder: FlightRecorder::new(if opts.recorder_capacity == 0 {
                120
            } else {
                opts.recorder_capacity
            }),
        };
        if let Some(path) = session.cache_file.clone().filter(|p| p.exists()) {
            let sections = persist::load(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            for (fingerprint, entries, neg_entries) in sections {
                session.cache(fingerprint).extend(entries);
                session.neg(fingerprint).extend(neg_entries);
            }
        }
        Ok(session)
    }

    /// Worker threads in the shared pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The shared cache for a configuration fingerprint (created empty on
    /// first use).
    pub fn cache(&self, fingerprint: CacheKey) -> Arc<RealizationCache> {
        Arc::clone(
            self.caches
                .lock()
                .expect("cache map poisoned")
                .entry(fingerprint)
                .or_default(),
        )
    }

    /// The shared tier-0.5 negative cache for a configuration fingerprint
    /// (created empty on first use).
    pub fn neg(&self, fingerprint: CacheKey) -> Arc<NegativeCache> {
        Arc::clone(
            self.negs
                .lock()
                .expect("negative cache map poisoned")
                .entry(fingerprint)
                .or_default(),
        )
    }

    /// Whether a `shutdown` request has been handled.
    pub fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Runs one synthesis job against the shared pool and caches. Assigns
    /// an id when the request carries none; records latency and outcome in
    /// the server counters either way.
    ///
    /// # Errors
    ///
    /// Invalid configuration, unparseable BLIF, synthesis failure, or (when
    /// `verify` is set) a simulation mismatch — all as displayable strings;
    /// a bad job never takes the session down.
    pub fn submit(&self, req: &JobRequest) -> Result<JobReply, String> {
        let id = req
            .id
            .unwrap_or_else(|| self.next_id.fetch_add(1, Ordering::SeqCst));
        let start = Instant::now();
        let traced = tels_trace::enabled();
        if traced {
            // Label every span this job emits — including those from pool
            // workers warming on its behalf — with the job id.
            tels_trace::set_job(Some(id));
        }
        metrics::SERVE_JOBS_INFLIGHT.add(1);
        let result = {
            let _span = tels_trace::span("serve", "job");
            self.run_job(id, req)
        };
        metrics::SERVE_JOBS_INFLIGHT.add(-1);
        if traced {
            tels_trace::set_job(None);
        }
        let micros = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let mut counters = self.counters.lock().expect("counters poisoned");
        counters.latency_us.record(micros);
        match result {
            Ok((tn, stats)) => {
                counters.jobs_ok += 1;
                metrics::SERVE_JOBS_OK.inc();
                Ok(JobReply {
                    id,
                    tn,
                    stats,
                    micros,
                })
            }
            Err(e) => {
                counters.jobs_failed += 1;
                metrics::SERVE_JOBS_FAILED.inc();
                drop(counters);
                if self.metrics_on {
                    // Freeze the registry at the moment of failure so the
                    // ring answers "what did the daemon look like when job
                    // N died" even after later frames wrap the ring.
                    self.sample_gauges();
                    self.recorder.record(Some(format!("job {id} failed: {e}")));
                }
                Err(e)
            }
        }
    }

    fn run_job(&self, id: u64, req: &JobRequest) -> Result<(ThresholdNetwork, SynthStats), String> {
        let setup_t0 = tels_metrics::enabled().then(Instant::now);
        validate_config(&req.config)?;
        let net = blif::parse_reader(req.blif.as_bytes()).map_err(|e| format!("blif: {e}"))?;
        // Mirror one-shot `tels synth`: factor by default, synthesize the
        // prepared network, verify (when asked) against the *original*.
        let prepared = Arc::new(if req.factor {
            script_algebraic(&net)
        } else {
            net.clone()
        });
        let config = &req.config;
        let cache = self.cache(config.cache_key());
        let neg = self.neg(config.cache_key());
        // Setup (parse, factoring, cache fetch) is the job's "queue wait":
        // everything before pool work could start on its behalf.
        let run_t0 = setup_t0.map(|t0| {
            metrics::SERVE_QUEUE_WAIT_NS.record(t0.elapsed().as_nanos() as u64);
            Instant::now()
        });
        let finish = |result: Result<(ThresholdNetwork, SynthStats), String>| {
            if let Some(t0) = run_t0 {
                metrics::SERVE_JOB_RUN_NS.record(t0.elapsed().as_nanos() as u64);
            }
            result
        };
        finish((|| {
            let logic_nodes = prepared
                .node_ids()
                .filter(|&n| !prepared.is_input(n))
                .count();
            let engaged = config.use_cache && logic_nodes >= config.parallel_min_nodes;
            let mut warm = None;
            if engaged && self.pool.threads() > 1 {
                warm = Some(
                    warm_on_pool(
                        &self.pool,
                        Arc::clone(&prepared),
                        config,
                        Arc::clone(&cache),
                        Some(Arc::clone(&neg)),
                        Some(id),
                    )
                    .map_err(|e| e.to_string())?,
                );
            }
            // Applies the same engagement gate internally, so sub-threshold
            // jobs reproduce the uncached one-shot flow bit-for-bit.
            let (tn, mut stats) = synthesize_with_shared_caches(&prepared, config, &cache, &neg)
                .map_err(|e| e.to_string())?;
            if let Some((solves, solver)) = warm {
                stats.ilp_solves += solves;
                stats.solver.merge(&solver);
            }
            if req.verify {
                match tn
                    .verify_against(&net, 12, 1024, 1)
                    .map_err(|e| e.to_string())?
                {
                    None => {}
                    Some(cex) => return Err(format!("verification mismatch at {cex:?}")),
                }
            }
            Ok((tn, stats))
        })())
    }

    /// Handles one parsed request frame, returning the reply and whether
    /// this request asked the server to shut down.
    pub fn handle(&self, doc: &Json) -> (Json, bool) {
        // Echo a numeric `id` in error replies even when the request is
        // otherwise malformed, so pipelined clients can correlate.
        let id = doc.get("id").and_then(Json::as_u64);
        match parse_request(doc) {
            Err(e) => (error_reply(id, &e), false),
            Ok(Request::Ping) => (
                Json::obj([("ok", Json::Bool(true)), ("pong", Json::Bool(true))]),
                false,
            ),
            Ok(Request::Stats) => (
                Json::obj([("ok", Json::Bool(true)), ("stats", self.stats_json())]),
                false,
            ),
            Ok(Request::Metrics {
                prometheus,
                recorder,
            }) => (self.metrics_reply(prometheus, recorder), false),
            Ok(Request::Shutdown) => {
                self.shutdown.store(true, Ordering::SeqCst);
                (
                    Json::obj([
                        ("ok", Json::Bool(true)),
                        ("shutting_down", Json::Bool(true)),
                    ]),
                    true,
                )
            }
            Ok(Request::Synth(job)) => match self.submit(&job) {
                Err(e) => (error_reply(job.id, &e), false),
                Ok(reply) => (
                    Json::obj([
                        ("id", Json::Num(reply.id as f64)),
                        ("ok", Json::Bool(true)),
                        ("model", Json::str(reply.tn.model())),
                        ("gates", Json::Num(reply.tn.num_gates() as f64)),
                        ("levels", Json::Num(reply.tn.depth() as f64)),
                        ("area", Json::Num(reply.tn.area() as f64)),
                        ("micros", Json::Num(reply.micros as f64)),
                        ("tnet", Json::str(reply.tn.to_tnet())),
                        ("stats", reply.stats.to_json()),
                    ]),
                    false,
                ),
            },
        }
    }

    /// Notes a malformed frame (unparseable JSON / non-UTF-8 payload) in
    /// the server counters.
    pub fn note_bad_frame(&self) {
        self.counters.lock().expect("counters poisoned").bad_frames += 1;
    }

    /// Server statistics: job counts, per-job latency histogram
    /// (microseconds, log2 buckets), cache population per configuration
    /// fingerprint, pool width, uptime.
    pub fn stats_json(&self) -> Json {
        // Union of fingerprints across both cache maps: a section can hold
        // only negative signatures (every query rejected).
        let mut sections: HashMap<CacheKey, (usize, usize)> = HashMap::new();
        {
            let caches = self.caches.lock().expect("cache map poisoned");
            for (k, c) in caches.iter() {
                sections.entry(*k).or_default().0 = c.len();
            }
        }
        {
            let negs = self.negs.lock().expect("negative cache map poisoned");
            for (k, c) in negs.iter() {
                sections.entry(*k).or_default().1 = c.len();
            }
        }
        let mut sections: Vec<(CacheKey, (usize, usize))> = sections.into_iter().collect();
        sections.sort_by_key(|(k, _)| k.encode());
        let total: usize = sections.iter().map(|(_, (n, _))| n).sum();
        let neg_total: usize = sections.iter().map(|(_, (_, n))| n).sum();
        let cache_list: Vec<Json> = sections
            .into_iter()
            .map(|(k, (n, neg))| {
                Json::obj([
                    (
                        "fingerprint",
                        Json::Arr(k.encode().iter().map(|&w| Json::Num(w as f64)).collect()),
                    ),
                    ("entries", Json::Num(n as f64)),
                    ("neg_entries", Json::Num(neg as f64)),
                ])
            })
            .collect();
        let counters = self.counters.lock().expect("counters poisoned");
        Json::obj([
            ("jobs_ok", Json::Num(counters.jobs_ok as f64)),
            ("jobs_failed", Json::Num(counters.jobs_failed as f64)),
            ("bad_frames", Json::Num(counters.bad_frames as f64)),
            ("pool_threads", Json::Num(self.pool.threads() as f64)),
            (
                "uptime_ms",
                Json::Num(self.started.elapsed().as_millis() as f64),
            ),
            ("cache_entries", Json::Num(total as f64)),
            ("negcache_entries", Json::Num(neg_total as f64)),
            ("caches", Json::Arr(cache_list)),
            ("job_latency_us", counters.latency_us.to_json()),
        ])
    }

    /// Saves every per-configuration cache to the configured cache file
    /// (atomic temp-file + rename; safe while jobs are running — each cache
    /// is snapshotted under its shard read locks). Returns the number of
    /// entries written, or `None` when no cache file is configured.
    ///
    /// # Errors
    ///
    /// Propagates file-system errors from writing the file.
    pub fn persist_now(&self) -> std::io::Result<Option<usize>> {
        let Some(path) = &self.cache_file else {
            return Ok(None);
        };
        // Union of fingerprints: a section may exist in one map only (the
        // accessors below create the missing, empty counterpart).
        let mut fingerprints: Vec<CacheKey> = {
            let caches = self.caches.lock().expect("cache map poisoned");
            let negs = self.negs.lock().expect("negative cache map poisoned");
            caches.keys().chain(negs.keys()).copied().collect()
        };
        // Deterministic section order, so identical contents produce an
        // identical file.
        fingerprints.sort_by_key(|k| k.encode());
        fingerprints.dedup();
        let held: Vec<(CacheKey, Arc<RealizationCache>, Arc<NegativeCache>)> = fingerprints
            .into_iter()
            .map(|k| (k, self.cache(k), self.neg(k)))
            .collect();
        let refs: Vec<(CacheKey, &RealizationCache, &NegativeCache)> =
            held.iter().map(|(k, c, n)| (*k, &**c, &**n)).collect();
        persist::save(path, &refs).map(Some)
    }

    /// Whether this session was started with metrics collection enabled.
    pub fn metrics_on(&self) -> bool {
        self.metrics_on
    }

    /// Interval between periodic flight-recorder frames.
    pub fn metrics_interval(&self) -> Duration {
        self.metrics_interval
    }

    /// Samples the scheduler depth gauges from the pool. Gauges have no
    /// hot-path writers; they are refreshed here — by the daemon's sampler
    /// thread and on demand when a `metrics` request arrives — so a
    /// snapshot always carries values no staler than the last request.
    pub fn sample_gauges(&self) {
        let (injector, deques) = self.pool.queue_depths();
        metrics::SCHED_INJECTOR_DEPTH.set(injector as i64);
        metrics::SCHED_DEQUE_DEPTH.set(deques as i64);
    }

    /// Takes one annotation-free flight-recorder frame (fresh snapshot,
    /// gauges sampled first). Called by the daemon's sampler thread.
    pub fn record_frame(&self) {
        self.sample_gauges();
        self.recorder.record(None);
    }

    /// Builds the reply for a `metrics` request: a fresh registry snapshot
    /// as JSON or Prometheus text, optionally with the flight-recorder
    /// ring dumped alongside.
    fn metrics_reply(&self, prometheus: bool, recorder: bool) -> Json {
        self.sample_gauges();
        let snap = tels_metrics::snapshot();
        let mut fields = vec![
            ("ok", Json::Bool(true)),
            ("enabled", Json::Bool(tels_metrics::enabled())),
        ];
        if prometheus {
            fields.push(("prometheus", Json::Str(snap.to_prometheus())));
        } else {
            fields.push(("metrics", snap.to_json()));
        }
        if recorder {
            fields.push(("recorder", self.recorder.to_json()));
        }
        Json::obj(fields)
    }

    /// Writes the final registry snapshot plus the flight-recorder ring to
    /// `<cache_file>.metrics.json`. No-op unless metrics are on and a
    /// cache file is configured. Called on daemon shutdown so the last
    /// run's counters survive the process.
    pub fn persist_metrics_now(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        if !self.metrics_on {
            return Ok(None);
        }
        let Some(path) = &self.cache_file else {
            return Ok(None);
        };
        self.sample_gauges();
        let mut out = path.clone();
        out.set_file_name(format!(
            "{}.metrics.json",
            out.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| "cache".to_owned())
        ));
        let doc = Json::obj([
            ("final", tels_metrics::snapshot().to_json()),
            ("recorder", self.recorder.to_json()),
        ]);
        std::fs::write(&out, doc.pretty())?;
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tels_core::TelsConfig;

    /// BLIF text of the smallest suite circuit that still engages the
    /// cache under the default config (>= `parallel_min_nodes` logic nodes
    /// *after* `script_algebraic` — the count the engagement gate sees).
    fn big_blif() -> String {
        let min = TelsConfig::default().parallel_min_nodes;
        let bench = tels_circuits::paper_suite()
            .into_iter()
            .find(|b| {
                let p = script_algebraic(&b.network);
                p.node_ids().filter(|&n| !p.is_input(n)).count() >= min
            })
            .expect("paper suite must contain a cache-engaging circuit");
        blif::write(&bench.network)
    }

    /// Default config with the tier-0 oracle disabled: tier-0 answers
    /// small-support queries without touching the cache, so tests that
    /// observe cache population and persistence must route queries past it.
    /// (`cache_key` ignores `use_tier0` — the fingerprint is unchanged.)
    fn cacheable_config() -> TelsConfig {
        TelsConfig {
            use_tier0: false,
            ..TelsConfig::default()
        }
    }

    fn session(threads: usize) -> ServeSession {
        ServeSession::new(ServeOptions {
            threads,
            ..ServeOptions::default()
        })
        .expect("session")
    }

    #[test]
    fn serve_bytes_match_one_shot() {
        let s = session(3);
        let text = big_blif();
        let req = JobRequest {
            blif: text.clone(),
            verify: true,
            config: cacheable_config(),
            ..JobRequest::default()
        };
        // One-shot reference: same preparation, fresh per-run cache.
        let net = blif::parse(&text).unwrap();
        let prepared = script_algebraic(&net);
        let (reference, _) =
            tels_core::synthesize_with_stats(&prepared, &cacheable_config()).unwrap();
        for round in 0..3 {
            let reply = s.submit(&req).expect("job");
            assert_eq!(
                reply.tn.to_tnet(),
                reference.to_tnet(),
                "serve output diverged on round {round}"
            );
        }
        // Cache persisted across jobs: the later rounds must have hits.
        assert!(!s.cache(cacheable_config().cache_key()).is_empty());
    }

    #[test]
    fn jobs_isolated_by_config_fingerprint() {
        let s = session(2);
        let text = big_blif();
        let relaxed = cacheable_config();
        let strict = TelsConfig {
            delta_off: 2,
            ..cacheable_config()
        };
        let a = s
            .submit(&JobRequest {
                blif: text.clone(),
                config: relaxed.clone(),
                ..JobRequest::default()
            })
            .unwrap();
        let b = s
            .submit(&JobRequest {
                blif: text.clone(),
                config: strict.clone(),
                ..JobRequest::default()
            })
            .unwrap();
        // Distinct fingerprints must have populated distinct caches.
        assert!(!s.cache(relaxed.cache_key()).is_empty());
        assert!(!s.cache(strict.cache_key()).is_empty());
        // And the stricter margin must reproduce its own one-shot bytes.
        let net = blif::parse(&text).unwrap();
        let prepared = script_algebraic(&net);
        let (ref_default, _) = tels_core::synthesize_with_stats(&prepared, &relaxed).unwrap();
        let (ref_strict, _) = tels_core::synthesize_with_stats(&prepared, &strict).unwrap();
        assert_eq!(a.tn.to_tnet(), ref_default.to_tnet());
        assert_eq!(b.tn.to_tnet(), ref_strict.to_tnet());
    }

    #[test]
    fn bad_jobs_reported_not_fatal() {
        let s = session(2);
        let bad = JobRequest {
            blif: ".model broken\n.inputs a\n.names a a a\n.end\n".to_string(),
            ..JobRequest::default()
        };
        assert!(s.submit(&bad).is_err());
        // Session still serves good jobs afterwards.
        let good = JobRequest {
            blif: big_blif(),
            ..JobRequest::default()
        };
        assert!(s.submit(&good).is_ok());
        let stats = s.stats_json();
        assert_eq!(stats.get("jobs_failed").and_then(Json::as_u64), Some(1));
        assert_eq!(stats.get("jobs_ok").and_then(Json::as_u64), Some(1));
        assert_eq!(
            stats
                .get("job_latency_us")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn cache_roundtrips_through_disk_with_identical_answers() {
        let path =
            std::env::temp_dir().join(format!("tels-serve-cache-{}.bin", std::process::id()));
        std::fs::remove_file(&path).ok();
        let req = JobRequest {
            blif: big_blif(),
            config: cacheable_config(),
            ..JobRequest::default()
        };
        let cold_tnet;
        let cold_entries;
        {
            let s = ServeSession::new(ServeOptions {
                threads: 2,
                cache_file: Some(path.clone()),
                ..ServeOptions::default()
            })
            .unwrap();
            cold_tnet = s.submit(&req).unwrap().tn.to_tnet();
            cold_entries = s.cache(cacheable_config().cache_key()).len();
            assert!(cold_entries > 0, "cold run must populate the cache");
            assert!(s.persist_now().unwrap().unwrap() >= cold_entries);
        }
        {
            let s = ServeSession::new(ServeOptions {
                threads: 2,
                cache_file: Some(path.clone()),
                ..ServeOptions::default()
            })
            .unwrap();
            let loaded = s.cache(cacheable_config().cache_key()).len();
            assert_eq!(loaded, cold_entries, "persisted entries must reload");
            let warm_tnet = s.submit(&req).unwrap().tn.to_tnet();
            assert_eq!(warm_tnet, cold_tnet, "persisted-warm bytes must match cold");
        }
        // A corrupt file must reject the session instead of panicking.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        std::fs::write(&path, &bytes).unwrap();
        let err = ServeSession::new(ServeOptions {
            threads: 2,
            cache_file: Some(path.clone()),
            ..ServeOptions::default()
        })
        .err()
        .expect("corrupt cache file must be rejected");
        assert!(err.contains("corrupt"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn concurrent_save_during_active_synthesis() {
        let path =
            std::env::temp_dir().join(format!("tels-serve-concurrent-{}.bin", std::process::id()));
        std::fs::remove_file(&path).ok();
        let s = ServeSession::new(ServeOptions {
            threads: 2,
            cache_file: Some(path.clone()),
            ..ServeOptions::default()
        })
        .unwrap();
        std::thread::scope(|scope| {
            let session = &s;
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(move || {
                        for _ in 0..4 {
                            session
                                .submit(&JobRequest {
                                    blif: big_blif(),
                                    ..JobRequest::default()
                                })
                                .expect("job under concurrent save");
                        }
                    })
                })
                .collect();
            // Saver races the jobs: every intermediate file must load.
            scope.spawn(move || {
                for _ in 0..8 {
                    session.persist_now().expect("save during synthesis");
                    let sections = persist::load(&path).expect("saved file must be valid");
                    for (fingerprint, entries, neg_entries) in sections {
                        // Snapshot consistency: reloading mid-run entries
                        // into fresh caches must be accepted wholesale.
                        let fresh = RealizationCache::new();
                        fresh.extend(entries);
                        NegativeCache::new().extend(neg_entries);
                        let _ = fingerprint;
                    }
                    std::thread::yield_now();
                }
            });
            for w in workers {
                w.join().unwrap();
            }
        });
        std::fs::remove_file(s.cache_file.as_ref().unwrap()).ok();
    }

    fn metrics_session() -> ServeSession {
        ServeSession::new(ServeOptions {
            threads: 2,
            metrics_enabled: true,
            ..ServeOptions::default()
        })
        .expect("session")
    }

    #[test]
    fn metrics_request_round_trips_json_and_prometheus() {
        let s = metrics_session();
        s.submit(&JobRequest {
            blif: big_blif(),
            ..JobRequest::default()
        })
        .expect("job");

        let (reply, shutdown) = s.handle(&protocol::metrics_request_json(false, false));
        assert!(!shutdown);
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(reply.get("enabled"), Some(&Json::Bool(true)));
        let snap = reply.get("metrics").expect("json snapshot");
        let jobs_ok = snap
            .get("metrics")
            .and_then(|m| m.get("tels_serve_jobs_ok_total"))
            .and_then(Json::as_u64)
            .expect("jobs_ok counter");
        assert!(jobs_ok >= 1, "jobs_ok = {jobs_ok}");

        let (reply, _) = s.handle(&protocol::metrics_request_json(true, true));
        let text = reply
            .get("prometheus")
            .and_then(Json::as_str)
            .expect("prometheus text");
        tels_metrics::lint_prometheus(text).expect("exposition must pass the lint");
        assert!(text.contains("# TYPE tels_serve_jobs_ok_total counter"));
        assert!(
            reply.get("recorder").and_then(Json::as_array).is_some(),
            "recorder dump requested"
        );
    }

    #[test]
    fn recorder_dump_on_failure_names_the_job() {
        let s = metrics_session();
        let err = s
            .submit(&JobRequest {
                id: Some(4242),
                blif: "this is not blif".to_string(),
                ..JobRequest::default()
            })
            .expect_err("malformed blif must fail");
        assert!(err.contains("blif"), "{err}");
        let dump = s.recorder.to_json().to_string();
        assert!(
            dump.contains("job 4242 failed"),
            "failure frame must name the job: {dump}"
        );
    }
}
