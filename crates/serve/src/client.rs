//! A minimal synchronous client for the serve protocol — the `tels client`
//! subcommand, the CI smoke test, and the benches all speak through this.

use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

use tels_trace::json::Json;

use crate::protocol::{
    metrics_request_json, read_json_frame, synth_request_json, write_frame, write_json_frame,
    JobRequest,
};

/// A connected client on a unix-socket daemon. One request/reply at a time
/// (the protocol allows pipelining; this helper keeps it simple).
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a daemon listening on `path`.
    ///
    /// # Errors
    ///
    /// Connection failures (no daemon, permission, stale socket).
    pub fn connect(path: &Path) -> io::Result<Client> {
        Ok(Client {
            stream: UnixStream::connect(path)?,
        })
    }

    /// Sends one JSON request frame and reads one reply frame.
    ///
    /// # Errors
    ///
    /// Transport failures, a closed connection, or an unparseable reply —
    /// all as displayable strings.
    pub fn request(&mut self, doc: &Json) -> Result<Json, String> {
        write_json_frame(&mut self.stream, doc).map_err(|e| format!("send: {e}"))?;
        self.read_reply()
    }

    /// Sends raw bytes as one frame (valid framing, arbitrary payload) and
    /// reads the reply — lets tests and the CLI exercise the daemon's
    /// malformed-JSON handling.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn request_raw(&mut self, payload: &[u8]) -> Result<Json, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send: {e}"))?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Json, String> {
        match read_json_frame(&mut self.stream) {
            Ok(Some(Ok(doc))) => Ok(doc),
            Ok(Some(Err(e))) => Err(format!("unparseable reply: {e}")),
            Ok(None) => Err("connection closed by server".to_string()),
            Err(e) => Err(format!("receive: {e}")),
        }
    }

    /// Submits a synthesis job and returns the reply object.
    ///
    /// # Errors
    ///
    /// Transport failures; a server-side job failure comes back as the
    /// reply object with `ok: false`.
    pub fn synth(&mut self, req: &JobRequest) -> Result<Json, String> {
        self.request(&synth_request_json(req))
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn ping(&mut self) -> Result<Json, String> {
        self.request(&Json::obj([("op", Json::str("ping"))]))
    }

    /// Fetches the server statistics object.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn stats(&mut self) -> Result<Json, String> {
        self.request(&Json::obj([("op", Json::str("stats"))]))
    }

    /// Fetches a live metrics snapshot: JSON by default, Prometheus
    /// exposition text when `prometheus` is set, plus the flight-recorder
    /// ring when `recorder` is set.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn metrics(&mut self, prometheus: bool, recorder: bool) -> Result<Json, String> {
        self.request(&metrics_request_json(prometheus, recorder))
    }

    /// Asks the server to save its caches and stop.
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Json, String> {
        self.request(&Json::obj([("op", Json::str("shutdown"))]))
    }
}
