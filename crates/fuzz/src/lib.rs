//! # tels-fuzz — differential fuzzing of the TELS synthesis pipeline
//!
//! The pipeline has four distinct answer paths for every threshold query
//! (tier-0 truth-table oracle, canonical cache, pre-filters, tiered ILP)
//! plus thread-count, trace, and cache knobs that must all be
//! observationally identical. This crate cross-checks them:
//!
//! - [`gen`] draws small seeded random Boolean networks, over-sampling the
//!   degenerate shapes that reach the synthesizer's edge paths;
//! - [`oracle`] runs each case through every configuration pair that must
//!   agree (and through `map_one_to_one` and the source network), turning
//!   panics into ordinary failures;
//! - [`shrink`] greedily minimizes any failing case to a locally minimal
//!   reproducer, which [`fuzz`] writes into a corpus directory as plain
//!   BLIF so `cargo test` can replay it forever after.
//!
//! ## Quickstart
//!
//! ```
//! use tels_fuzz::{fuzz, FuzzOptions};
//!
//! let report = fuzz(&FuzzOptions {
//!     cases: 25,
//!     seed: 1,
//!     ..FuzzOptions::default()
//! });
//! assert_eq!(report.cases, 25);
//! assert!(report.failures.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod oracle;
pub mod shrink;

use std::path::{Path, PathBuf};

use tels_logic::rng::SplitMix64;
use tels_logic::{blif, Network};

pub use gen::{gen_case, GenOptions};
pub use oracle::{run_case, tn_to_network, Failure, FailureKind, OracleOptions};
pub use shrink::{shrink, ShrinkResult};

/// Options of one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Number of cases to generate and check.
    pub cases: usize,
    /// Master seed; case seeds are an independent SplitMix64 stream of it.
    pub seed: u64,
    /// Generator bounds.
    pub gen: GenOptions,
    /// Oracle knobs (ψ, thread count, simulation depth).
    pub oracle: OracleOptions,
    /// Minimize failing cases before reporting them.
    pub shrink: bool,
    /// Bound on accepted shrink steps per failure.
    pub max_shrink_steps: usize,
    /// Write each (shrunk) failing case into this directory as BLIF.
    pub corpus_dir: Option<PathBuf>,
    /// Print a progress line to stderr every this many cases (0 = never).
    pub progress_every: usize,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            cases: 200,
            seed: 1,
            gen: GenOptions::default(),
            oracle: OracleOptions::default(),
            shrink: true,
            max_shrink_steps: 256,
            corpus_dir: None,
            progress_every: 0,
        }
    }
}

/// One failing case, as reported by [`fuzz`].
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The per-case seed (reproduce with [`gen_case`] and this seed).
    pub case_seed: u64,
    /// 0-based index of the case within the campaign.
    pub case_index: usize,
    /// The oracle leg that disagreed.
    pub kind: FailureKind,
    /// Human-readable description from the first failing leg.
    pub detail: String,
    /// The minimized network (the original when shrinking is off).
    pub network: Network,
    /// Where the reproducer was written, when a corpus dir was given.
    pub corpus_path: Option<PathBuf>,
}

/// Summary of a fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Cases actually run.
    pub cases: usize,
    /// All failing cases, in discovery order.
    pub failures: Vec<FuzzFailure>,
}

/// Serializes a reproducer as BLIF with a provenance header.
///
/// The header lines are `#` comments, so the file replays through the
/// ordinary BLIF parser.
pub fn reproducer_blif(failure: &FuzzFailure) -> String {
    format!(
        "# tels-fuzz reproducer\n# case seed: {}\n# oracle leg: {}\n# detail: {}\n{}",
        failure.case_seed,
        failure.kind.tag(),
        failure.detail.replace('\n', " "),
        blif::write(&failure.network)
    )
}

/// Runs a fuzzing campaign.
///
/// Panics inside the pipeline are caught per oracle leg and reported as
/// failures; the default panic hook is suppressed for the duration of the
/// run so expected panics do not spray backtraces over the progress output.
pub fn fuzz(opts: &FuzzOptions) -> FuzzReport {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = fuzz_inner(opts);
    std::panic::set_hook(prev_hook);
    report
}

fn fuzz_inner(opts: &FuzzOptions) -> FuzzReport {
    let mut seeds = SplitMix64::new(opts.seed);
    let mut failures = Vec::new();
    for case_index in 0..opts.cases {
        let case_seed = seeds.next_u64();
        if opts.progress_every > 0 && case_index % opts.progress_every == 0 && case_index > 0 {
            eprintln!(
                "tels-fuzz: {case_index}/{} cases, {} failure(s)",
                opts.cases,
                failures.len()
            );
        }
        let net = gen_case(case_seed, &opts.gen);
        let Err(failure) = run_case(&net, &opts.oracle) else {
            continue;
        };
        let network = if opts.shrink {
            shrink(&net, failure.kind, &opts.oracle, opts.max_shrink_steps).network
        } else {
            net
        };
        let mut entry = FuzzFailure {
            case_seed,
            case_index,
            kind: failure.kind,
            detail: failure.detail,
            network,
            corpus_path: None,
        };
        if let Some(dir) = &opts.corpus_dir {
            match write_reproducer(dir, &entry) {
                Ok(path) => entry.corpus_path = Some(path),
                Err(e) => eprintln!("tels-fuzz: cannot write reproducer: {e}"),
            }
        }
        failures.push(entry);
    }
    FuzzReport {
        cases: opts.cases,
        failures,
    }
}

fn write_reproducer(dir: &Path, failure: &FuzzFailure) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!(
        "fuzz-{}-{:016x}.blif",
        failure.kind.tag(),
        failure.case_seed
    ));
    std::fs::write(&path, reproducer_blif(failure))?;
    Ok(path)
}

/// Replays every `.blif` file in `dir` through the full oracle.
///
/// Returns the number of files replayed; the error carries every file
/// that failed with its failure description. A missing or empty directory
/// replays zero files successfully (an empty corpus is healthy).
///
/// # Errors
///
/// Returns a `(path, description)` list of unparsable or failing files.
pub fn replay_corpus(dir: &Path, oracle: &OracleOptions) -> Result<usize, Vec<(PathBuf, String)>> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "blif"))
            .collect(),
        Err(_) => return Ok(0),
    };
    paths.sort();
    let mut bad = Vec::new();
    let mut replayed = 0;
    for path in paths {
        let file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                bad.push((path, format!("unreadable: {e}")));
                continue;
            }
        };
        let net = match blif::parse_reader(std::io::BufReader::new(file)) {
            Ok(n) => n,
            Err(e) => {
                bad.push((path, format!("unparsable: {e}")));
                continue;
            }
        };
        replayed += 1;
        if let Err(f) = run_case(&net, oracle) {
            bad.push((path, format!("{:?} leg: {}", f.kind, f.detail)));
        }
    }
    if bad.is_empty() {
        Ok(replayed)
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let opts = FuzzOptions {
            cases: 10,
            seed: 7,
            shrink: false,
            ..FuzzOptions::default()
        };
        let a = fuzz(&opts);
        let b = fuzz(&opts);
        assert_eq!(a.cases, b.cases);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn replay_of_missing_dir_is_empty_success() {
        let r = replay_corpus(
            Path::new("/definitely/not/a/dir"),
            &OracleOptions::default(),
        );
        assert_eq!(r.unwrap(), 0);
    }

    #[test]
    fn reproducer_blif_round_trips() {
        let failure = FuzzFailure {
            case_seed: 0xdead_beef,
            case_index: 0,
            kind: FailureKind::SynthEquiv,
            detail: "example\nwith newline".into(),
            network: gen_case(3, &GenOptions::default()),
            corpus_path: None,
        };
        let text = reproducer_blif(&failure);
        let net = blif::parse(&text).unwrap();
        assert_eq!(net.num_inputs(), failure.network.num_inputs());
    }
}
