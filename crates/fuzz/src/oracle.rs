//! The differential oracle: every configuration pair that must agree.
//!
//! One fuzz case runs the same source network through the full matrix and
//! cross-checks the answers:
//!
//! | leg | configurations | must agree on |
//! |-----|----------------|---------------|
//! | parse | streaming vs in-memory BLIF parse | BLIF bytes |
//! | tier-0 | `use_tier0` on vs off | `.tnet` bytes |
//! | tier-0.5 | `use_tier05` on vs off | `.tnet` bytes |
//! | threads | 1 thread vs N threads | `.tnet` bytes |
//! | trace | tracing off vs on | `.tnet` bytes |
//! | serve | in-process serve session vs one-shot | `.tnet` bytes |
//! | cache | `use_cache` on vs off | gate count, depth, function |
//! | synthesis | TELS result vs source network | function (exhaustive) |
//! | baseline | `map_one_to_one` vs source and vs TELS | function (exhaustive) |
//!
//! Byte-identity legs pin the determinism guarantees established by the
//! pipeline (canonical-space cache solves, deterministic tie-breaks); the
//! cache leg is *functional* because cache-off solves in the original
//! variable order and may pick different (equally optimal) weights.
//!
//! All functional legs run on the word-parallel threshold evaluation
//! engine (`tels_core::eval`): threshold-vs-Boolean goes through
//! `verify_against`, threshold-vs-threshold through `equivalent_to` — 64
//! vectors per step, no minterm expansion. The exponential
//! [`tn_to_network`] expansion survives only as a cross-check of the
//! engine itself (see `tests/packed_eval.rs` and this module's tests).
//!
//! Every leg runs under [`std::panic::catch_unwind`], so a panic anywhere
//! in the pipeline is reported as an ordinary [`Failure`] and can be
//! shrunk like any other disagreement.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tels_core::{map_one_to_one, synthesize, TelsConfig, ThresholdNetwork};
use tels_logic::{Cube, Network, Sop, Var};

/// Knobs of one oracle run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OracleOptions {
    /// Fanin restriction ψ used for every synthesis leg.
    pub psi: usize,
    /// The "N" of the 1-vs-N thread determinism leg.
    pub alt_threads: usize,
    /// Exhaustive equivalence up to this many inputs (a proof); random
    /// patterns beyond.
    pub exhaustive_limit: u32,
    /// Random pattern count past the exhaustive limit.
    pub random_patterns: usize,
    /// Simulation seed for the random-pattern fallback.
    pub sim_seed: u64,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            psi: 3,
            alt_threads: 4,
            exhaustive_limit: 12,
            random_patterns: 2048,
            sim_seed: 0x7e15,
        }
    }
}

/// Which oracle leg disagreed (the classifier the shrinker preserves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The baseline synthesis itself returned an error or panicked.
    Synth,
    /// Streaming and in-memory BLIF parsing disagreed on the network.
    ParseStream,
    /// Tier-0 on/off produced different `.tnet` bytes.
    Tier0Bytes,
    /// Tier-0.5 on/off produced different `.tnet` bytes.
    Tier05Bytes,
    /// 1 vs N threads produced different `.tnet` bytes.
    ThreadBytes,
    /// Tracing on/off produced different `.tnet` bytes.
    TraceBytes,
    /// Metrics on/off produced different `.tnet` bytes.
    MetricsBytes,
    /// An in-process serve session produced different `.tnet` bytes than
    /// the one-shot path (scheduler or shared-cache nondeterminism).
    ServeBytes,
    /// Cache on/off disagreed on gate count, depth, or function.
    CacheDiff,
    /// The synthesized network is not equivalent to the source.
    SynthEquiv,
    /// The one-to-one baseline errored or is not equivalent to the source.
    Map11,
    /// TELS and the one-to-one baseline disagree with each other.
    Baseline,
}

impl FailureKind {
    /// A short lowercase tag used in corpus file names.
    pub fn tag(self) -> &'static str {
        match self {
            FailureKind::Synth => "synth",
            FailureKind::ParseStream => "parse",
            FailureKind::Tier0Bytes => "tier0",
            FailureKind::Tier05Bytes => "tier05",
            FailureKind::ThreadBytes => "threads",
            FailureKind::TraceBytes => "trace",
            FailureKind::MetricsBytes => "metrics",
            FailureKind::ServeBytes => "serve",
            FailureKind::CacheDiff => "cache",
            FailureKind::SynthEquiv => "equiv",
            FailureKind::Map11 => "map11",
            FailureKind::Baseline => "baseline",
        }
    }
}

/// A reported oracle disagreement.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The leg that disagreed.
    pub kind: FailureKind,
    /// Human-readable description of the disagreement.
    pub detail: String,
}

impl Failure {
    fn new(kind: FailureKind, detail: impl Into<String>) -> Failure {
        Failure {
            kind,
            detail: detail.into(),
        }
    }
}

/// Runs a pipeline leg, converting panics into [`Failure`]s.
fn guarded<T>(
    kind: FailureKind,
    what: &str,
    f: impl FnOnce() -> Result<T, tels_core::SynthError>,
) -> Result<T, Failure> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(Failure::new(kind, format!("{what} failed: {e}"))),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Failure::new(kind, format!("{what} panicked: {msg}")))
        }
    }
}

fn base_config(opts: &OracleOptions) -> TelsConfig {
    TelsConfig {
        psi: opts.psi,
        num_threads: 1,
        // Engage the cache/thread machinery even on tiny fuzz networks —
        // the whole point is to drive the parallel paths.
        parallel_min_nodes: 0,
        ..TelsConfig::default()
    }
}

/// Converts a threshold network back into a Boolean [`Network`] by
/// expanding each gate into its ON-minterm SOP, so threshold results can
/// go through [`check_equivalence`] like any other network.
///
/// # Errors
///
/// Returns an error (as a `String`) if a gate has more than 16 fanins —
/// the expansion is exponential in gate fanin, which ψ keeps tiny.
pub fn tn_to_network(tn: &ThresholdNetwork) -> Result<Network, String> {
    let mut net = Network::new(tn.model().to_string());
    let mut map: Vec<Option<tels_logic::NodeId>> = Vec::new();
    for id in tn.node_ids() {
        if tn.is_input(id) {
            let new = net
                .add_input(tn.name(id).to_string())
                .map_err(|e| e.to_string())?;
            map.push(Some(new));
            continue;
        }
        let gate = tn.gate(id).expect("non-input node is a gate");
        let k = gate.inputs.len();
        if k > 16 {
            return Err(format!("gate `{}` has {k} fanins (> 16)", tn.name(id)));
        }
        let mut cubes = Vec::new();
        for m in 0..1u32 << k {
            let values: Vec<bool> = (0..k).map(|i| m >> i & 1 != 0).collect();
            if gate.eval(&values) {
                cubes.push(Cube::from_literals(
                    values.iter().enumerate().map(|(i, &v)| (Var(i as u32), v)),
                ));
            }
        }
        let fanins: Vec<tels_logic::NodeId> = gate
            .inputs
            .iter()
            .map(|&f| map[f.index()].expect("tn ids are topologically ordered"))
            .collect();
        let mut sop = Sop::from_cubes(cubes);
        sop.scc();
        let (fanins, sop) = prune_unused(fanins, sop);
        let new = net
            .add_node(tn.name(id).to_string(), fanins, sop)
            .map_err(|e| e.to_string())?;
        map.push(Some(new));
    }
    for (name, id) in tn.outputs() {
        net.add_output(name.clone(), map[id.index()].expect("mapped"))
            .map_err(|e| e.to_string())?;
    }
    Ok(net)
}

/// Drops fanins the minimized SOP no longer references (a gate whose
/// weight never matters, e.g. weight 0, vanishes from the minterm form).
fn prune_unused(fanins: Vec<tels_logic::NodeId>, sop: Sop) -> (Vec<tels_logic::NodeId>, Sop) {
    let support = sop.support();
    let kept: Vec<usize> = (0..fanins.len())
        .filter(|&i| support.contains(Var(i as u32)))
        .collect();
    if kept.len() == fanins.len() {
        return (fanins, sop);
    }
    let mut m = vec![Var(0); fanins.len()];
    for (new_i, &old_i) in kept.iter().enumerate() {
        m[old_i] = Var(new_i as u32);
    }
    (kept.iter().map(|&i| fanins[i]).collect(), sop.remap(&m))
}

/// Checks a threshold network against the Boolean source on the packed
/// engine (panics and errors become failures of `kind`).
fn expect_tn_vs_source(
    kind: FailureKind,
    what: &str,
    tn: &ThresholdNetwork,
    source: &Network,
    opts: &OracleOptions,
) -> Result<(), Failure> {
    let mismatch = guarded(kind, what, || {
        tn.verify_against(
            source,
            opts.exhaustive_limit,
            opts.random_patterns,
            opts.sim_seed,
        )
    })?;
    match mismatch {
        None => Ok(()),
        Some(assign) => Err(Failure::new(
            kind,
            format!("{what} differs from source at {assign:?}"),
        )),
    }
}

/// Checks two threshold networks against each other on the packed engine.
fn expect_tn_vs_tn(
    kind: FailureKind,
    what: &str,
    a: &ThresholdNetwork,
    b: &ThresholdNetwork,
    opts: &OracleOptions,
) -> Result<(), Failure> {
    let mismatch = guarded(kind, what, || {
        a.equivalent_to(
            b,
            opts.exhaustive_limit,
            opts.random_patterns,
            opts.sim_seed,
        )
    })?;
    match mismatch {
        None => Ok(()),
        Some(assign) => Err(Failure::new(kind, format!("{what} disagree at {assign:?}"))),
    }
}

/// The streaming-vs-string BLIF parse byte-identity leg (see [`run_case`]).
fn parse_leg(net: &Network) -> Result<(), Failure> {
    let kind = FailureKind::ParseStream;
    let text = tels_logic::blif::write(net);
    let via_string = guarded(kind, "parse(string)", || {
        Ok(tels_logic::blif::parse(&text).unwrap_or_else(|e| panic!("string parse failed: {e}")))
    })?;
    let via_stream = guarded(kind, "parse(stream)", || {
        let reader = std::io::BufReader::with_capacity(7, text.as_bytes());
        Ok(tels_logic::blif::parse_reader(reader)
            .unwrap_or_else(|e| panic!("streaming parse failed: {e}")))
    })?;
    if tels_logic::blif::write(&via_string) != tels_logic::blif::write(&via_stream) {
        return Err(Failure::new(
            kind,
            "streaming and string parsers produced different networks",
        ));
    }
    Ok(())
}

/// The serve-vs-one-shot byte-identity leg (see [`run_case`]).
fn serve_leg(net: &Network, cfg: &TelsConfig, opts: &OracleOptions) -> Result<(), Failure> {
    use tels_serve::protocol::JobRequest;
    use tels_serve::{ServeOptions, ServeSession};

    let text = tels_logic::blif::write(net);
    let kind = FailureKind::ServeBytes;
    let reference = guarded(kind, "synthesize(round-trip)", || {
        let parsed = tels_logic::blif::parse(&text)
            .unwrap_or_else(|e| panic!("blif round-trip failed: {e}"));
        synthesize(&parsed, cfg)
    })?
    .to_tnet();
    let served = catch_unwind(AssertUnwindSafe(|| {
        let session = ServeSession::new(ServeOptions {
            threads: opts.alt_threads,
            ..ServeOptions::default()
        })?;
        let req = JobRequest {
            blif: text.clone(),
            factor: false,
            config: cfg.clone(),
            ..JobRequest::default()
        };
        let cold = session.submit(&req)?.tn.to_tnet();
        let warm = session.submit(&req)?.tn.to_tnet();
        Ok::<(String, String), String>((cold, warm))
    }));
    let (cold, warm) = match served {
        Ok(Ok(pair)) => pair,
        Ok(Err(e)) => return Err(Failure::new(kind, format!("serve session failed: {e}"))),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            return Err(Failure::new(kind, format!("serve session panicked: {msg}")));
        }
    };
    if cold != reference {
        return Err(Failure::new(
            kind,
            "serve session (cold cache) produced different .tnet bytes than one-shot",
        ));
    }
    if warm != reference {
        return Err(Failure::new(
            kind,
            "serve session (warm shared cache) produced different .tnet bytes than one-shot",
        ));
    }
    Ok(())
}

/// Runs the full oracle matrix on one source network.
///
/// Returns `Ok(())` when every leg agrees, or the first [`Failure`].
pub fn run_case(net: &Network, opts: &OracleOptions) -> Result<(), Failure> {
    let cfg = base_config(opts);

    // Leg: streaming vs in-memory BLIF parse. Both parsers must accept the
    // writer's output and agree byte-for-byte after a write-back; the
    // streaming side reads through a 7-byte buffer so line reassembly from
    // partial fills is exercised on every case.
    parse_leg(net)?;

    // Baseline synthesis (1 thread, cache + tier-0 on).
    let base = guarded(FailureKind::Synth, "synthesize", || synthesize(net, &cfg))?;
    let base_bytes = base.to_tnet();

    // Leg: tier-0 on/off byte identity.
    let tier0_off = guarded(FailureKind::Tier0Bytes, "synthesize(no-tier0)", || {
        synthesize(
            net,
            &TelsConfig {
                use_tier0: false,
                ..cfg.clone()
            },
        )
    })?;
    if tier0_off.to_tnet() != base_bytes {
        return Err(Failure::new(
            FailureKind::Tier0Bytes,
            "tier-0 on/off produced different .tnet bytes",
        ));
    }

    // Leg: tier-0.5 on/off byte identity. The tier answers only when its
    // optimum provably matches the merged ILP's, so disabling it must not
    // change a single byte.
    let tier05_off = guarded(FailureKind::Tier05Bytes, "synthesize(no-tier05)", || {
        synthesize(
            net,
            &TelsConfig {
                use_tier05: false,
                ..cfg.clone()
            },
        )
    })?;
    if tier05_off.to_tnet() != base_bytes {
        return Err(Failure::new(
            FailureKind::Tier05Bytes,
            "tier-0.5 on/off produced different .tnet bytes",
        ));
    }

    // Leg: 1 vs N threads byte identity.
    let threaded = guarded(FailureKind::ThreadBytes, "synthesize(threads)", || {
        synthesize(
            net,
            &TelsConfig {
                num_threads: opts.alt_threads,
                ..cfg.clone()
            },
        )
    })?;
    if threaded.to_tnet() != base_bytes {
        return Err(Failure::new(
            FailureKind::ThreadBytes,
            format!(
                "1 vs {} threads produced different .tnet bytes",
                opts.alt_threads
            ),
        ));
    }

    // Leg: tracing on/off byte identity. Tracing is process-global, so
    // enable/disable around the leg and drain the buffer afterwards.
    tels_trace::enable();
    let traced = guarded(FailureKind::TraceBytes, "synthesize(traced)", || {
        synthesize(net, &cfg)
    });
    tels_trace::disable();
    let _ = tels_trace::drain();
    if traced?.to_tnet() != base_bytes {
        return Err(Failure::new(
            FailureKind::TraceBytes,
            "tracing on/off produced different .tnet bytes",
        ));
    }

    // Leg: metrics on/off byte identity. Like tracing, the instrument
    // registry is process-global; enable around the leg and disable after.
    // Counters are observation-only — a divergence here means an
    // instrumentation site leaked into synthesis decisions.
    tels_metrics::enable();
    let metered = guarded(FailureKind::MetricsBytes, "synthesize(metrics)", || {
        synthesize(net, &cfg)
    });
    tels_metrics::disable();
    if metered?.to_tnet() != base_bytes {
        return Err(Failure::new(
            FailureKind::MetricsBytes,
            "metrics on/off produced different .tnet bytes",
        ));
    }

    // Leg: an in-process serve session (pooled scheduler + shared
    // realization cache) must match the one-shot path byte for byte. The
    // job is submitted twice — cold, then again against the now-populated
    // shared cache — so both the scheduler and cross-job cache reuse are
    // on the hook. `factor: false` because the oracle synthesizes the raw
    // generated network, and the comparison reference goes through the
    // same BLIF round-trip the daemon's parser sees.
    serve_leg(net, &cfg, opts)?;

    // Leg: cache on/off — same gate structure, same function (weights may
    // legitimately differ: the cache solves in canonical variable order).
    let no_cache = guarded(FailureKind::CacheDiff, "synthesize(no-cache)", || {
        synthesize(
            net,
            &TelsConfig {
                use_cache: false,
                ..cfg.clone()
            },
        )
    })?;
    if no_cache.num_gates() != base.num_gates() || no_cache.depth() != base.depth() {
        return Err(Failure::new(
            FailureKind::CacheDiff,
            format!(
                "cache on/off gate structure differs: {} gates depth {} vs {} gates depth {}",
                base.num_gates(),
                base.depth(),
                no_cache.num_gates(),
                no_cache.depth()
            ),
        ));
    }
    expect_tn_vs_tn(
        FailureKind::CacheDiff,
        "cache-on and cache-off results",
        &base,
        &no_cache,
        opts,
    )?;

    // Leg: synthesized network vs the source, on the packed engine.
    expect_tn_vs_source(
        FailureKind::SynthEquiv,
        "synthesized network",
        &base,
        net,
        opts,
    )?;

    // Leg: the one-to-one baseline vs the source…
    let m11 = guarded(FailureKind::Map11, "map_one_to_one", || {
        map_one_to_one(net, &cfg)
    })?;
    expect_tn_vs_source(FailureKind::Map11, "one-to-one baseline", &m11, net, opts)?;

    // …and vs the TELS result (closing the three-way triangle).
    expect_tn_vs_tn(
        FailureKind::Baseline,
        "TELS and one-to-one baseline",
        &m11,
        &base,
        opts,
    )?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tels_logic::blif;
    use tels_logic::sim::{check_equivalence, EquivOptions};

    fn equiv_opts(opts: &OracleOptions) -> EquivOptions {
        EquivOptions {
            exhaustive_limit: opts.exhaustive_limit,
            random_patterns: opts.random_patterns,
            seed: opts.sim_seed,
        }
    }

    #[test]
    fn known_good_network_passes_all_legs() {
        let net = blif::parse(
            ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n",
        )
        .unwrap();
        run_case(&net, &OracleOptions::default()).unwrap();
    }

    #[test]
    fn tn_round_trip_matches_source() {
        let net = blif::parse(
            ".model m\n.inputs a b c d\n.outputs f g\n.names a b t\n11 1\n.names t c d f\n1-0 1\n-1- 1\n.names a d g\n00 1\n.end\n",
        )
        .unwrap();
        let tn = synthesize(&net, &TelsConfig::default()).unwrap();
        let round = tn_to_network(&tn).unwrap();
        let r = check_equivalence(&net, &round, &EquivOptions::default()).unwrap();
        assert!(r.is_equivalent());
    }

    #[test]
    fn broken_network_is_caught() {
        // A "threshold network" that computes the wrong function must trip
        // the equivalence legs — checked by converting an inverter tnet
        // against a buffer source.
        let source =
            blif::parse(".model m\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n").unwrap();
        let mut tn = ThresholdNetwork::new("m");
        let a = tn.add_input("a").unwrap();
        let g = tn
            .add_gate(
                "f",
                tels_core::ThresholdGate {
                    inputs: vec![a],
                    weights: vec![-1],
                    threshold: 0,
                },
            )
            .unwrap();
        tn.add_output("f", g).unwrap();
        let cand = tn_to_network(&tn).unwrap();
        let r = check_equivalence(&source, &cand, &equiv_opts(&OracleOptions::default())).unwrap();
        assert!(!r.is_equivalent());
        // The packed leg (the one run_case actually uses) catches it too.
        let r = expect_tn_vs_source(
            FailureKind::SynthEquiv,
            "inverted",
            &tn,
            &source,
            &OracleOptions::default(),
        );
        assert!(r.is_err());
    }

    #[test]
    fn packed_engine_agrees_with_minterm_expansion() {
        // The packed threshold engine replaced `tn_to_network` as the
        // oracle's equivalence mechanism; keep the exponential expansion as
        // an independent cross-check of the engine on both verdicts.
        let net = blif::parse(
            ".model m\n.inputs a b c d\n.outputs f g\n.names a b t\n11 1\n.names t c d f\n1-0 1\n-1- 1\n.names a d g\n00 1\n.end\n",
        )
        .unwrap();
        let opts = OracleOptions::default();
        let cfg = base_config(&opts);
        let tn = synthesize(&net, &cfg).unwrap();
        let m11 = map_one_to_one(&net, &cfg).unwrap();

        // Equivalent pair: both mechanisms say so.
        let expanded = tn_to_network(&tn).unwrap();
        let m11_expanded = tn_to_network(&m11).unwrap();
        let r = check_equivalence(&expanded, &m11_expanded, &equiv_opts(&opts)).unwrap();
        assert!(r.is_equivalent());
        assert!(expect_tn_vs_tn(FailureKind::Baseline, "pair", &tn, &m11, &opts).is_ok());

        // Inequivalent pair (one output inverted): both mechanisms object.
        let mut bad = ThresholdNetwork::new("bad");
        let ins: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| bad.add_input(*n).unwrap())
            .collect();
        let g = bad
            .add_gate(
                "f",
                tels_core::ThresholdGate {
                    inputs: vec![ins[0], ins[1]],
                    weights: vec![1, 1],
                    threshold: 2,
                },
            )
            .unwrap();
        bad.add_output("f", g).unwrap();
        bad.add_output("g", ins[3]).unwrap();
        let bad_expanded = tn_to_network(&bad).unwrap();
        let r = check_equivalence(&expanded, &bad_expanded, &equiv_opts(&opts)).unwrap();
        assert!(!r.is_equivalent());
        assert!(expect_tn_vs_tn(FailureKind::Baseline, "pair", &tn, &bad, &opts).is_err());
    }
}
