//! Seeded random Boolean-network generation for the differential fuzzer.
//!
//! Unlike [`tels_circuits`]' benchmark-shaped generator, the fuzz
//! generator aims for *coverage of the synthesizer's case analysis*, not
//! realism: networks are small enough that exhaustive equivalence checking
//! is a proof, and the distribution deliberately over-samples degenerate
//! shapes — constant nodes, single-cube nodes, buffers and inverters,
//! fully unate covers and heavily binate ones — because those are the
//! covers that reach the synthesizer's edge paths (empty splits, trivial
//! checks, Theorem-1 refutations).
//!
//! The entire case shape is derived from one `u64` seed: the same seed
//! always produces the same network, so every failure is reproducible from
//! its seed alone.
//!
//! [`tels_circuits`]: https://docs.rs/tels-circuits

use tels_logic::rng::Xoshiro256;
use tels_logic::{Cube, Network, NodeId, Sop, Var};

/// Bounds on the generated case shape.
///
/// The per-case parameters (input count, node count, cube density, literal
/// density, unate/binate mix) are drawn *per case* from within these
/// bounds, so one fuzz run sweeps the whole distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenOptions {
    /// Maximum primary inputs (at least 2). Keep at or below the oracle's
    /// exhaustive limit so equivalence checks are proofs.
    pub max_inputs: usize,
    /// Maximum internal logic nodes (at least 1).
    pub max_nodes: usize,
    /// Maximum fanins drawn per node (at least 2).
    pub max_fanin: usize,
    /// Maximum cubes per node function (at least 1).
    pub max_cubes: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_inputs: 8,
            max_nodes: 10,
            max_fanin: 5,
            max_cubes: 4,
        }
    }
}

/// Per-mille chance that a node is a degenerate special instead of a
/// random SOP (split between constants, buffers, inverters, single cubes).
const SPECIAL_PCT: u32 = 12;

/// Generates one fuzz case from a seed.
///
/// The model name encodes the seed (`fuzz_<seed>`) so reproducers written
/// to the corpus are self-describing.
///
/// # Panics
///
/// Panics if `opts` violates its documented minimums.
pub fn gen_case(seed: u64, opts: &GenOptions) -> Network {
    assert!(opts.max_inputs >= 2 && opts.max_nodes >= 1);
    assert!(opts.max_fanin >= 2 && opts.max_cubes >= 1);
    let mut rng = Xoshiro256::seed_from_u64(seed);

    // Case shape: drawn once per seed.
    let n_inputs = rng.gen_range(2..=opts.max_inputs);
    let n_nodes = rng.gen_range(1..=opts.max_nodes);
    // Unate/binate mix: 0 = fully positive-unate, 50 = heavily binate.
    let negation_pct = *pick(&mut rng, &[0u32, 5, 15, 30, 50]);
    // Chance that a candidate fanin variable enters a cube.
    let literal_pct = rng.gen_range(35..=90u32);
    // Bias toward recent nodes as fanins (depth knob).
    let locality_pct = rng.gen_range(0..=90u32);

    let mut net = Network::new(format!("fuzz_{seed}"));
    let mut signals: Vec<NodeId> = (0..n_inputs)
        .map(|i| net.add_input(format!("i{i}")).expect("fresh input name"))
        .collect();

    for n in 0..n_nodes {
        let node = if rng.gen_range(0..100u32) < SPECIAL_PCT {
            special_node(&mut rng, &mut net, n, &signals)
        } else {
            random_sop_node(
                &mut rng,
                &mut net,
                n,
                &signals,
                opts,
                negation_pct,
                literal_pct,
                locality_pct,
                n_inputs,
            )
        };
        signals.push(node);
    }

    // Outputs: 1–3 distinct logic nodes, always including the last (the
    // deepest), the rest drawn at random.
    let logic: Vec<NodeId> = signals[n_inputs..].to_vec();
    let n_outputs = rng.gen_range(1..=3.min(logic.len()));
    let mut chosen: Vec<NodeId> = vec![*logic.last().expect("n_nodes >= 1")];
    let mut guard = 0;
    while chosen.len() < n_outputs && guard < 32 {
        guard += 1;
        let cand = logic[rng.gen_range(0..logic.len())];
        if !chosen.contains(&cand) {
            chosen.push(cand);
        }
    }
    for (o, id) in chosen.iter().enumerate() {
        net.add_output(format!("o{o}"), *id).expect("fresh output");
    }
    net
}

fn pick<'a, T>(rng: &mut Xoshiro256, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// A degenerate node: constant 0/1, buffer, inverter, or a single cube.
fn special_node(rng: &mut Xoshiro256, net: &mut Network, n: usize, signals: &[NodeId]) -> NodeId {
    let name = format!("n{n}");
    let choice = rng.gen_range(0..5u32);
    match choice {
        0 => net.add_node(name, Vec::new(), Sop::zero()),
        1 => net.add_node(name, Vec::new(), Sop::one()),
        2 | 3 => {
            // Buffer (2) or inverter (3) of a random existing signal.
            let phase = choice == 2;
            let src = *pick(rng, signals);
            net.add_node(
                name,
                vec![src],
                Sop::from_cubes([Cube::from_literals([(Var(0), phase)])]),
            )
        }
        _ => {
            // Single wide cube: the shape that historically hit the unate
            // split's <2-cube precondition.
            let k = rng.gen_range(2..=4.min(signals.len()));
            let fanins = draw_distinct(rng, signals, k, 0);
            let cube = Cube::from_literals(
                (0..fanins.len()).map(|v| (Var(v as u32), rng.gen_range(0..100u32) >= 30)),
            );
            net.add_node(name, fanins, Sop::from_cubes([cube]))
        }
    }
    .expect("valid special node")
}

/// Draws `k` distinct fanins, biased toward the last `recent` signals when
/// `recent > 0`.
fn draw_distinct(
    rng: &mut Xoshiro256,
    signals: &[NodeId],
    k: usize,
    locality_pct: u32,
) -> Vec<NodeId> {
    let mut fanins: Vec<NodeId> = Vec::with_capacity(k);
    let mut guard = 0;
    while fanins.len() < k && guard < 100 {
        guard += 1;
        let idx = if rng.gen_range(0..100u32) < locality_pct && signals.len() > k {
            rng.gen_range(signals.len() - k..signals.len())
        } else {
            rng.gen_range(0..signals.len())
        };
        if !fanins.contains(&signals[idx]) {
            fanins.push(signals[idx]);
        }
    }
    fanins
}

#[allow(clippy::too_many_arguments)]
fn random_sop_node(
    rng: &mut Xoshiro256,
    net: &mut Network,
    n: usize,
    signals: &[NodeId],
    opts: &GenOptions,
    negation_pct: u32,
    literal_pct: u32,
    locality_pct: u32,
    n_inputs: usize,
) -> NodeId {
    let fanin_count = rng.gen_range(2..=opts.max_fanin.min(signals.len()));
    let locality = if signals.len() > n_inputs {
        locality_pct
    } else {
        0
    };
    let mut fanins = draw_distinct(rng, signals, fanin_count, locality);
    let k = fanins.len() as u32;

    let n_cubes = rng.gen_range(1..=opts.max_cubes);
    let mut cubes = Vec::with_capacity(n_cubes);
    for _ in 0..n_cubes {
        let mut cube = Cube::one();
        for v in 0..k {
            if rng.gen_range(0..100u32) < literal_pct {
                cube.set_literal(Var(v), rng.gen_range(0..100u32) >= negation_pct);
            }
        }
        if cube.is_one() {
            // Guarantee at least one literal so the cube is not the
            // tautology (constant-1 nodes come from `special_node`).
            cube.set_literal(
                Var(rng.gen_range(0..k)),
                rng.gen_range(0..100u32) >= negation_pct,
            );
        }
        cubes.push(cube);
    }
    let mut f = Sop::from_cubes(cubes);

    // Drop declared fanins that fell outside the support.
    let support = f.support();
    let kept: Vec<usize> = (0..fanins.len())
        .filter(|&i| support.contains(Var(i as u32)))
        .collect();
    if kept.len() != fanins.len() {
        let mut map = vec![Var(0); fanins.len()];
        for (new_i, &old_i) in kept.iter().enumerate() {
            map[old_i] = Var(new_i as u32);
        }
        f = f.remap(&map);
        fanins = kept.iter().map(|&i| fanins[i]).collect();
    }
    net.add_node(format!("n{n}"), fanins, f)
        .expect("valid random node")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let opts = GenOptions::default();
        for seed in [0u64, 1, 42, u64::MAX] {
            let a = gen_case(seed, &opts);
            let b = gen_case(seed, &opts);
            assert_eq!(a.num_inputs(), b.num_inputs());
            assert_eq!(a.num_logic_nodes(), b.num_logic_nodes());
            for m in 0..1usize << a.num_inputs() {
                let assign: Vec<bool> = (0..a.num_inputs()).map(|i| m >> i & 1 != 0).collect();
                assert_eq!(a.eval(&assign).unwrap(), b.eval(&assign).unwrap());
            }
        }
    }

    #[test]
    fn cases_stay_within_bounds_and_acyclic() {
        let opts = GenOptions::default();
        for seed in 0..200u64 {
            let net = gen_case(seed, &opts);
            assert!(net.num_inputs() >= 2 && net.num_inputs() <= opts.max_inputs);
            assert!(net.num_logic_nodes() >= 1 && net.num_logic_nodes() <= opts.max_nodes);
            assert!(!net.outputs().is_empty());
            assert!(net.topo_order().is_ok(), "seed {seed} built a cycle");
        }
    }

    #[test]
    fn distribution_hits_degenerate_shapes() {
        // Over a few hundred seeds the special-node path must produce at
        // least one constant and one single-cube node.
        let opts = GenOptions::default();
        let (mut constants, mut single_cubes) = (0usize, 0usize);
        for seed in 0..300u64 {
            let net = gen_case(seed, &opts);
            for id in net.node_ids().filter(|&id| !net.is_input(id)) {
                let sop = net.sop(id);
                if sop.is_zero() || sop.is_one() {
                    constants += 1;
                } else if sop.num_cubes() == 1 {
                    single_cubes += 1;
                }
            }
        }
        assert!(constants > 0, "no constant nodes generated");
        assert!(single_cubes > 0, "no single-cube nodes generated");
    }
}
