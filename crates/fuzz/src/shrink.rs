//! Greedy minimization of failing fuzz cases.
//!
//! Given a network that fails the oracle, repeatedly try every single-step
//! structural reduction ([`tels_logic::mutate::shrink_steps`]) and adopt
//! the first candidate that *still fails with the same classification* and
//! is strictly smaller. The result is a local minimum: no single cube,
//! literal, node, or input can be removed without losing the failure.
//!
//! Shrinking re-runs the full oracle on every candidate, so it is the
//! expensive part of a failing fuzz run; `max_steps` bounds the work.

use tels_logic::mutate::{network_size, shrink_steps};
use tels_logic::Network;

use crate::oracle::{run_case, FailureKind, OracleOptions};

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized network (the original if nothing could be removed).
    pub network: Network,
    /// Number of accepted reduction steps.
    pub steps: usize,
    /// Size of the original network, per [`network_size`].
    pub from_size: usize,
    /// Size of the minimized network.
    pub to_size: usize,
}

/// Returns the failure kind `net` currently exhibits, if any.
fn failing_kind(net: &Network, opts: &OracleOptions) -> Option<FailureKind> {
    run_case(net, opts).err().map(|f| f.kind)
}

/// Greedily minimizes `net`, preserving failure kind `kind`.
///
/// `max_steps` bounds the number of *accepted* reductions (each accepted
/// step scans at most one full candidate list).
pub fn shrink(
    net: &Network,
    kind: FailureKind,
    opts: &OracleOptions,
    max_steps: usize,
) -> ShrinkResult {
    let from_size = network_size(net);
    let mut current = net.clone();
    let mut steps = 0;
    'outer: while steps < max_steps {
        let size = network_size(&current);
        for cand in shrink_steps(&current) {
            if network_size(&cand) < size && failing_kind(&cand, opts) == Some(kind) {
                current = cand;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    let to_size = network_size(&current);
    ShrinkResult {
        network: current,
        steps,
        from_size,
        to_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tels_logic::blif;

    #[test]
    fn passing_network_shrinks_to_itself() {
        let net = blif::parse(
            ".model m\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n",
        )
        .unwrap();
        // The network passes the oracle, so no candidate can "still fail":
        // shrink must return it unchanged in zero steps.
        let r = shrink(&net, FailureKind::Synth, &OracleOptions::default(), 64);
        assert_eq!(r.steps, 0);
        assert_eq!(r.from_size, r.to_size);
        assert_eq!(r.network.num_logic_nodes(), net.num_logic_nodes());
    }
}
