//! Regenerates Fig. 10 of the paper: gate count vs. fanin restriction for
//! the `comp` benchmark, fanin relaxed from 3 to 8, one-to-one mapping vs
//! TELS.
//!
//! Expected shape (§VI-B): the one-to-one count drops substantially as the
//! fanin restriction is relaxed (better decomposition), while the TELS count
//! stays nearly flat (larger collapsed functions are rarely threshold).
//!
//! Run with `cargo run --release -p tels-bench --bin fig10`.

use tels_circuits::comparator;
use tels_core::{map_one_to_one, synthesize, TelsConfig};
use tels_logic::opt::{script_algebraic, script_boolean};

fn main() {
    let net = comparator(16); // stand-in for MCNC comp (32 inputs)
    let boolean_net = script_boolean(&net);
    let algebraic_net = script_algebraic(&net);

    println!("Fig. 10 reproduction: gate count vs fanin restriction (comp_like)");
    println!("{:<6} {:>14} {:>10}", "fanin", "one-to-one", "TELS");
    println!("{}", "-".repeat(34));
    for psi in 3..=8 {
        let config = TelsConfig {
            psi,
            ..TelsConfig::default()
        };
        let baseline = map_one_to_one(&boolean_net, &config).expect("one-to-one");
        let tels = synthesize(&algebraic_net, &config).expect("TELS");
        assert!(
            tels.verify_against(&net, 12, 512, psi as u64)
                .expect("interfaces match")
                .is_none(),
            "TELS network differs at ψ = {psi}"
        );
        println!(
            "{:<6} {:>14} {:>10}",
            psi,
            baseline.num_gates(),
            tels.num_gates()
        );
    }
    println!();
    println!("paper: one-to-one falls steeply with relaxed fanin; TELS stays flat");
    println!("(a fanin restriction of 3-5 gives good results, §VI-B)");
}
