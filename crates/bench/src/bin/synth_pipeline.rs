//! Benchmarks the synthesis pipeline with and without the canonical
//! realization cache, ILP pre-filters, and warming threads, and writes the
//! results to `BENCH_synthesis.json` — including a per-tier solver-stage
//! breakdown (Chow merging, integer fast path, rational fallbacks) so
//! speedups are attributable to a stage.
//!
//! Two configurations are compared over a mixed circuit suite:
//!
//! * **serial**: `use_cache = false`, `num_threads = 1` — the pre-cache
//!   flow, every threshold query solved by the ILP in its original order;
//! * **cached**: `use_cache = true`, `num_threads = 4` — the canonical
//!   cache with the structure pre-filter and the level-parallel warming
//!   pass (the whole machinery disengages below `parallel_min_nodes`,
//!   so c17-sized circuits run the serial flow in both columns).
//!
//! Both runs of every circuit are checked functionally equivalent against
//! the source network before being timed, and the run doubles as a
//! consistency gate: it fails if any circuit's serial and cached runs
//! disagree on gate count or threshold-query count, or if the
//! rational-fallback rate exceeds a sanity bound.
//!
//! Run with `cargo run --release -p tels-bench --bin synth_pipeline`;
//! pass `--quick` for a single-sample smoke run that skips the JSON write
//! (what `scripts/ci.sh` uses).

use std::time::Instant;

use tels_circuits::{
    alu_slice, barrel_shifter, c17, comparator, decoder, gray_code, mux_tree, parity_tree,
    random_network, ripple_adder, RandomNetOptions,
};
use tels_core::{synthesize_with_stats, SynthStats, TelsConfig};
use tels_logic::opt::script_algebraic;
use tels_logic::Network;

/// Timed samples per configuration; the minimum is reported.
const SAMPLES: usize = 5;

/// Largest tolerated share of ILP solves that fell back to the rational
/// simplex, across the whole suite and both configurations. TELS ILPs are
/// tiny (ψ+1 columns, small coefficients), so the integer fast path should
/// essentially never overflow; a burst of fallbacks signals a regression.
const MAX_FALLBACK_RATE: f64 = 0.02;

struct Measurement {
    millis: f64,
    gates: usize,
    stats: SynthStats,
}

fn measure(net: &Network, config: &TelsConfig, samples: usize) -> Measurement {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..samples {
        let start = Instant::now();
        let (tn, stats) = synthesize_with_stats(net, config).expect("synthesis failed");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            tn.verify_against(net, 12, 1024, 0xBE)
                .expect("simulation failed")
                .is_none(),
            "synthesized network differs from input"
        );
        if elapsed < best {
            best = elapsed;
            result = Some((tn.num_gates(), stats));
        }
    }
    let (gates, stats) = result.expect("at least one sample");
    Measurement {
        millis: best,
        gates,
        stats,
    }
}

fn json_row(name: &str, serial: &Measurement, cached: &Measurement) -> String {
    let sv = &serial.stats.solver;
    format!(
        concat!(
            "    {{\"circuit\": \"{}\", \"serial_ms\": {:.3}, \"cached_ms\": {:.3}, ",
            "\"speedup\": {:.2}, \"gates_serial\": {}, \"gates_cached\": {}, ",
            "\"ilp_calls_serial\": {}, \"ilp_calls_cached\": {}, ",
            "\"ilp_solves_serial\": {}, \"ilp_solves_cached\": {}, ",
            "\"cache_hits\": {}, \"prefilter_rejections\": {}, \"ilp_avoided\": {}, ",
            "\"solver_serial\": {{\"chow_merged_vars\": {}, \"int_fast_path_solves\": {}, ",
            "\"rational_fallbacks\": {}, \"structure_ms\": {:.3}, \"int_solve_ms\": {:.3}, ",
            "\"rational_solve_ms\": {:.3}}}}}"
        ),
        name,
        serial.millis,
        cached.millis,
        serial.millis / cached.millis,
        serial.gates,
        cached.gates,
        serial.stats.ilp_calls,
        cached.stats.ilp_calls,
        serial.stats.ilp_solves,
        cached.stats.ilp_solves,
        cached.stats.cache_hits,
        cached.stats.prefilter_rejections,
        cached.stats.ilp_avoided(),
        sv.chow_merged_vars,
        sv.int_fast_path_solves,
        sv.rational_fallbacks,
        sv.structure_ns as f64 / 1e6,
        sv.int_solve_ns as f64 / 1e6,
        sv.rational_solve_ns as f64 / 1e6,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 1 } else { SAMPLES };

    // (name, network, ψ): the default ψ = 3 plus a few ψ = 5 entries,
    // where wider unate covers reach the structure pre-filter.
    let circuits: Vec<(String, Network, usize)> = vec![
        ("c17".to_string(), c17(), 3),
        ("alu_slice".to_string(), alu_slice(), 3),
        ("barrel_shifter_8".to_string(), barrel_shifter(8), 3),
        ("gray_code_8".to_string(), gray_code(8), 3),
        ("ripple_adder_8".to_string(), ripple_adder(8), 3),
        ("comparator_6".to_string(), comparator(6), 3),
        ("mux_tree_3".to_string(), mux_tree(3), 3),
        ("decoder_5".to_string(), decoder(5), 3),
        ("parity_tree_10".to_string(), parity_tree(10), 3),
        (
            "random_48".to_string(),
            random_network("random_48", 0x7e15, &RandomNetOptions::default()),
            3,
        ),
        (
            "random_96".to_string(),
            random_network(
                "random_96",
                0xcafe,
                &RandomNetOptions {
                    nodes: 96,
                    inputs: 20,
                    outputs: 10,
                    ..RandomNetOptions::default()
                },
            ),
            3,
        ),
        ("ripple_adder_8_psi5".to_string(), ripple_adder(8), 5),
        ("comparator_6_psi5".to_string(), comparator(6), 5),
        (
            "random_48_psi5".to_string(),
            random_network("random_48", 0x7e15, &RandomNetOptions::default()),
            5,
        ),
    ];

    let mut rows = Vec::new();
    let mut total_serial = 0.0;
    let mut total_cached = 0.0;
    let mut total_avoided = 0usize;
    let mut total_int_solves = 0usize;
    let mut total_fallbacks = 0usize;
    let mut total_merged = 0usize;
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "circuit", "serial ms", "cached ms", "speedup", "solves", "hits", "prefilter", "fallbk"
    );
    for (name, net, psi) in &circuits {
        let serial_config = TelsConfig {
            use_cache: false,
            num_threads: 1,
            psi: *psi,
            ..TelsConfig::default()
        };
        let cached_config = TelsConfig {
            use_cache: true,
            num_threads: 4,
            psi: *psi,
            ..TelsConfig::default()
        };
        let prepared = script_algebraic(net);
        let serial = measure(&prepared, &serial_config, samples);
        let cached = measure(&prepared, &cached_config, samples);
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>7.2}x {:>8} {:>8} {:>9} {:>8}",
            name,
            serial.millis,
            cached.millis,
            serial.millis / cached.millis,
            cached.stats.ilp_solves,
            cached.stats.cache_hits,
            cached.stats.prefilter_rejections,
            serial.stats.solver.rational_fallbacks + cached.stats.solver.rational_fallbacks,
        );
        // Consistency gates: both configurations must emit the same gate
        // count and issue the same number of threshold queries (counters
        // thread-merge and tally identically on both paths).
        assert_eq!(
            serial.gates, cached.gates,
            "{name}: gates_cached != gates_serial"
        );
        assert_eq!(
            serial.stats.ilp_calls, cached.stats.ilp_calls,
            "{name}: cached and serial runs disagree on threshold-query count"
        );
        total_serial += serial.millis;
        total_cached += cached.millis;
        total_avoided += cached.stats.ilp_avoided();
        for m in [&serial, &cached] {
            total_int_solves += m.stats.solver.int_fast_path_solves;
            total_fallbacks += m.stats.solver.rational_fallbacks;
            total_merged += m.stats.solver.chow_merged_vars;
        }
        rows.push(json_row(name, &serial, &cached));
    }

    let speedup = total_serial / total_cached;
    let fallback_rate = if total_int_solves + total_fallbacks > 0 {
        total_fallbacks as f64 / (total_int_solves + total_fallbacks) as f64
    } else {
        0.0
    };
    println!(
        "\ntotal: serial {total_serial:.1} ms, cached {total_cached:.1} ms — {speedup:.2}x \
         ({total_avoided} ILP solves avoided, {total_merged} Chow-merged vars, \
         {total_fallbacks} rational fallbacks / {:.2}% rate)",
        fallback_rate * 1e2
    );

    if !quick {
        let json = format!(
            "{{\n  \"benchmark\": \"synth_pipeline\",\n  \"serial\": {{\"use_cache\": false, \
             \"num_threads\": 1}},\n  \"cached\": {{\"use_cache\": true, \"num_threads\": 4}},\n  \
             \"total_serial_ms\": {total_serial:.3},\n  \"total_cached_ms\": {total_cached:.3},\n  \
             \"speedup\": {speedup:.3},\n  \"ilp_avoided\": {total_avoided},\n  \
             \"chow_merged_vars\": {total_merged},\n  \"int_fast_path_solves\": {total_int_solves},\n  \
             \"rational_fallbacks\": {total_fallbacks},\n  \"circuits\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        std::fs::write("BENCH_synthesis.json", &json).expect("write BENCH_synthesis.json");
        println!("wrote BENCH_synthesis.json");
    }
    assert!(
        fallback_rate <= MAX_FALLBACK_RATE,
        "rational-fallback rate {:.2}% exceeds the {:.0}% sanity bound",
        fallback_rate * 1e2,
        MAX_FALLBACK_RATE * 1e2
    );
    assert!(
        speedup >= 1.0,
        "cached pipeline slower than serial ({speedup:.2}x)"
    );
}
