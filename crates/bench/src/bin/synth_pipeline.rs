//! Benchmarks the synthesis pipeline with and without the canonical
//! realization cache, ILP pre-filters, and warming threads, and writes the
//! results to `BENCH_synthesis.json` — including a per-tier solver-stage
//! breakdown (Chow merging, integer fast path, rational fallbacks) so
//! speedups are attributable to a stage.
//!
//! Two configurations are compared over a mixed circuit suite:
//!
//! * **serial**: `use_cache = false`, `num_threads = 1`,
//!   `use_tier0 = false` — the pre-cache, pre-oracle flow, every
//!   threshold query solved by the ILP in its original order;
//! * **cached**: `use_cache = true`, `num_threads = 4`, `use_tier0 =
//!   true` — the full pipeline: the tier-0 truth-table oracle answers
//!   every small-support query, the canonical cache with the structure
//!   pre-filter and the level-parallel warming pass covers the rest (the
//!   cache machinery disengages below `parallel_min_nodes`, so c17-sized
//!   circuits run the serial flow in both columns).
//!
//! Both runs of every circuit are checked functionally equivalent against
//! the source network before being timed, and the run doubles as a
//! consistency gate: it fails if any circuit's serial and cached runs
//! disagree on gate count or threshold-query count, if the tier-0 oracle
//! changes a single byte of any synthesized netlist (each circuit is also
//! synthesized with `use_tier0 = false` and the `.tnet` text compared), if
//! the oracle does not cut the suite's ILP solves by at least half, or if
//! the rational-fallback rate exceeds a sanity bound.
//!
//! A third pass re-runs the suite once untraced and once with `tels-trace`
//! collecting (spans + provenance journal), asserts that tracing changes
//! neither gate counts nor threshold-query counts and journals exactly one
//! provenance event per emitted gate, and reports the wall-clock overhead
//! (`trace_overhead_pct` in the JSON).
//!
//! A fourth pass (`perturb` in the JSON) runs §VI-C Monte Carlo yield
//! analysis on large generated circuits (array multiplier, majority grid,
//! parity ladder, LFSR cone) through the word-parallel evaluation engine
//! and the pre-engine scalar path at identical seeds, asserts the two
//! produce bit-identical failure rates, and gates the packed speedup
//! (≥ 20x in full runs; within 10% of the committed baseline in quick
//! mode).
//!
//! A fifth pass (`tier05_large` in the JSON) synthesizes large generated
//! circuits at ψ = 7 — where collapse produces support-6/7 threshold
//! queries above the tier-0 oracle's 5-variable reach — with the tier-0.5
//! pseudo-Boolean procedure on and off. It asserts byte-identical `.tnet`
//! output either way, gates tier 0.5 at cutting the suite's remaining ILP
//! solves by at least half at equal-or-better wall clock, and writes the
//! `ilp_solve_reduction_large` object (`{before, after, pct}`); quick mode
//! additionally regression-gates the reduction against the committed
//! baseline when the key is present in either its bare-fraction or object
//! form.
//!
//! A sixth pass (`scaling` in the JSON) pushes one ≥10k-node generated
//! circuit through the whole big-circuit frontend: streaming BLIF parse
//! (checked byte-identical to the string parser), algebraic factoring,
//! cached synthesis, and packed verification, recording per-stage wall
//! clock and the process peak RSS. It also measures how much insert-time
//! structural hashing (`tels_logic::arena::StrashNet`) shrinks the
//! duplicated-logic ALU generator, and asserts the ≥2-gates-per-bit
//! reduction. Quick mode regression-gates the stage timings against the
//! committed baseline so large-n slowdowns become visible in CI.
//!
//! Run with `cargo run --release -p tels-bench --bin synth_pipeline`;
//! pass `--quick` for a single-sample smoke run that skips the JSON write
//! (what `scripts/ci.sh` uses).

use std::time::Instant;

use tels_circuits::{
    alu_array, alu_slice, array_multiplier, barrel_shifter, c17, comparator, decoder, gray_code,
    lfsr_cone, majority_grid, mux_tree, parity_ladder, parity_tree, random_network, ripple_adder,
    RandomNetOptions,
};
use tels_core::perturb::{failure_rate, failure_rate_scalar, PerturbOptions};
use tels_core::{map_one_to_one, synthesize_with_stats, SynthStats, TelsConfig};
use tels_logic::arena::StrashNet;
use tels_logic::opt::script_algebraic;
use tels_logic::{blif, Network};
use tels_trace::json::Json;

/// Timed samples per configuration; the minimum is reported.
const SAMPLES: usize = 5;

/// Largest tolerated share of ILP solves that fell back to the rational
/// simplex, across the whole suite and both configurations. TELS ILPs are
/// tiny (ψ+1 columns, small coefficients), so the integer fast path should
/// essentially never overflow; a burst of fallbacks signals a regression.
const MAX_FALLBACK_RATE: f64 = 0.02;

struct Measurement {
    millis: f64,
    gates: usize,
    stats: SynthStats,
    /// The synthesized netlist text (bit-identicality gates compare it).
    tnet: String,
}

fn measure(net: &Network, config: &TelsConfig, samples: usize) -> Measurement {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..samples {
        let start = Instant::now();
        let (tn, stats) = synthesize_with_stats(net, config).expect("synthesis failed");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            tn.verify_against(net, 12, 1024, 0xBE)
                .expect("simulation failed")
                .is_none(),
            "synthesized network differs from input"
        );
        if elapsed < best {
            best = elapsed;
            result = Some((tn.num_gates(), tn.to_tnet(), stats));
        }
    }
    let (gates, tnet, stats) = result.expect("at least one sample");
    Measurement {
        millis: best,
        gates,
        stats,
        tnet,
    }
}

/// One circuit's JSON row. The per-configuration counters are the shared
/// [`SynthStats::to_json`] serialization — the same object `tels synth
/// --stats-json` prints — so downstream tooling parses one schema.
fn json_row(name: &str, serial: &Measurement, cached: &Measurement) -> Json {
    Json::obj([
        ("circuit", Json::str(name)),
        ("serial_ms", Json::Num(serial.millis)),
        ("cached_ms", Json::Num(cached.millis)),
        ("speedup", Json::Num(serial.millis / cached.millis)),
        ("gates_serial", Json::Num(serial.gates as f64)),
        ("gates_cached", Json::Num(cached.gates as f64)),
        ("serial", serial.stats.to_json()),
        ("cached", cached.stats.to_json()),
    ])
}

/// Re-runs every circuit once untraced and once traced (cached
/// configuration, one sample each), asserting that tracing is behaviorally
/// inert and that the provenance journal holds exactly one event per
/// emitted gate. Returns `(untraced_ms, traced_ms)` suite totals.
fn measure_trace_overhead(suite: &[(String, Network, TelsConfig)]) -> (f64, f64) {
    let mut untraced_ms = 0.0;
    let mut traced_ms = 0.0;
    for (name, prepared, config) in suite {
        let start = Instant::now();
        let (tn_u, st_u) = synthesize_with_stats(prepared, config).expect("synthesis failed");
        untraced_ms += start.elapsed().as_secs_f64() * 1e3;

        tels_trace::drain();
        tels_trace::enable();
        let start = Instant::now();
        let (tn_t, st_t) = synthesize_with_stats(prepared, config).expect("synthesis failed");
        traced_ms += start.elapsed().as_secs_f64() * 1e3;
        tels_trace::disable();
        let trace = tels_trace::drain();

        assert_eq!(
            tn_u.num_gates(),
            tn_t.num_gates(),
            "{name}: tracing changed the gate count"
        );
        assert_eq!(
            st_u.ilp_calls, st_t.ilp_calls,
            "{name}: tracing changed the threshold-query count"
        );
        assert_eq!(
            trace.provenance_events().count(),
            tn_t.num_gates(),
            "{name}: provenance journal != one event per emitted gate"
        );
    }
    (untraced_ms, traced_ms)
}

/// Re-runs every circuit with metrics collection off and on (cached
/// configuration), asserting byte-identical `.tnet` output and an equal
/// ILP solve count either way. Timing uses min-of-3 per leg to damp timer
/// noise — the ≤2% overhead gate rides on this number. Returns
/// `(off_ms, on_ms)` suite totals.
fn measure_metrics_overhead(suite: &[(String, Network, TelsConfig)]) -> (f64, f64) {
    let mut off_ms = 0.0;
    let mut on_ms = 0.0;
    for (name, prepared, config) in suite {
        let mut best_off = f64::INFINITY;
        let mut best_on = f64::INFINITY;
        let mut last_off = None;
        let mut last_on = None;
        for _ in 0..3 {
            let start = Instant::now();
            let (tn, st) = synthesize_with_stats(prepared, config).expect("synthesis failed");
            best_off = best_off.min(start.elapsed().as_secs_f64() * 1e3);
            last_off = Some((tn.to_tnet(), st.ilp_solves));

            tels_metrics::enable();
            let start = Instant::now();
            let (tn, st) = synthesize_with_stats(prepared, config).expect("synthesis failed");
            best_on = best_on.min(start.elapsed().as_secs_f64() * 1e3);
            tels_metrics::disable();
            last_on = Some((tn.to_tnet(), st.ilp_solves));
        }
        let (tnet_off, solves_off) = last_off.expect("ran at least once");
        let (tnet_on, solves_on) = last_on.expect("ran at least once");
        assert_eq!(
            tnet_off, tnet_on,
            "{name}: metrics on/off produced different .tnet bytes"
        );
        assert_eq!(
            solves_off, solves_on,
            "{name}: metrics changed the ILP solve count"
        );
        off_ms += best_off;
        on_ms += best_on;
    }
    (off_ms, on_ms)
}

/// The word-parallel Monte Carlo scaling leg: §VI-C yield analysis on
/// large generated circuits, packed engine vs the pre-engine scalar path.
///
/// Each circuit is mapped one-to-one (fast and deterministic — synthesis
/// speed is not what this leg measures), then `failure_rate` (packed,
/// 64 vectors per word, reference simulated once) and
/// `failure_rate_scalar` (per-row `Network::eval` + `eval_disturbed`,
/// the pre-engine mechanics) run over identical seeds. The two must agree
/// bit for bit — the engine is only allowed to be faster, never
/// different — and the suite speedup is the headline scaling number.
///
/// Returns the JSON section and the measured suite speedup. Quick mode
/// runs the same workload — the whole leg is well under a second, and the
/// committed-baseline gate only makes sense on identical parameters.
fn measure_perturb() -> (Json, f64) {
    let trials = 16;
    let vectors = 512;
    let circuits: Vec<(&str, Network)> = vec![
        ("array_multiplier_6", array_multiplier(6)),
        ("majority_grid_16x8", majority_grid(16, 8)),
        ("parity_ladder_16x8", parity_ladder(16, 8)),
        ("lfsr_cone_16x24", lfsr_cone(16, 24)),
    ];
    let mut rows = Vec::new();
    let mut total_packed = 0.0;
    let mut total_scalar = 0.0;
    println!(
        "\n{:<20} {:>6} {:>11} {:>11} {:>8} {:>9}",
        "perturb circuit", "gates", "scalar ms", "packed ms", "speedup", "fail rate"
    );
    for (name, net) in &circuits {
        // δ_on = 2 gives every gate an integer margin that dwarfs the
        // ±0.1 disturbed-weight shifts below, so no trial fails and both
        // paths sweep every pattern of every trial — a throughput
        // comparison, not an early-exit race.
        let margin = TelsConfig {
            delta_on: 2,
            ..TelsConfig::default()
        };
        let tn = map_one_to_one(net, &margin).expect("one-to-one mapping");
        let opts = PerturbOptions {
            variation: 0.2,
            trials,
            exhaustive_limit: 10,
            vectors,
            seed: 0x5ca1e ^ name.len() as u64,
            threads: 1,
        };
        // Best-of-5 repetitions per path: the gate below compares this
        // run's ratio against the committed baseline, so a descheduled
        // timeslice — on either side of the ratio — must not read as a
        // regression or inflate the baseline.
        let time_best = |f: &mut dyn FnMut() -> f64| {
            let mut best = f64::INFINITY;
            let mut rate = 0.0;
            for _ in 0..5 {
                let start = Instant::now();
                rate = f();
                best = best.min(start.elapsed().as_secs_f64() * 1e3);
            }
            (rate, best)
        };
        let (scalar, scalar_ms) =
            time_best(&mut || failure_rate_scalar(&tn, net, &opts).expect("scalar failure rate"));
        let (packed, packed_ms) =
            time_best(&mut || failure_rate(&tn, net, &opts).expect("packed failure rate"));
        assert_eq!(
            packed.to_bits(),
            scalar.to_bits(),
            "{name}: packed and scalar Monte Carlo disagree ({packed} vs {scalar})"
        );
        println!(
            "{:<20} {:>6} {:>11.2} {:>11.2} {:>7.1}x {:>8.1}%",
            name,
            tn.num_gates(),
            scalar_ms,
            packed_ms,
            scalar_ms / packed_ms,
            1e2 * packed
        );
        total_scalar += scalar_ms;
        total_packed += packed_ms;
        rows.push(Json::obj([
            ("circuit", Json::str(*name)),
            ("gates", Json::Num(tn.num_gates() as f64)),
            ("scalar_ms", Json::Num(scalar_ms)),
            ("packed_ms", Json::Num(packed_ms)),
            ("speedup", Json::Num(scalar_ms / packed_ms)),
            ("failure_rate", Json::Num(packed)),
        ]));
    }
    let speedup = total_scalar / total_packed;
    println!(
        "perturb total: scalar {total_scalar:.1} ms, packed {total_packed:.1} ms — {speedup:.1}x"
    );
    let section = Json::obj([
        ("trials", Json::Num(trials as f64)),
        ("vectors", Json::Num(vectors as f64)),
        ("variation", Json::Num(0.2)),
        ("total_scalar_ms", Json::Num(total_scalar)),
        ("total_packed_ms", Json::Num(total_packed)),
        ("speedup", Json::Num(speedup)),
        ("circuits", Json::Arr(rows)),
    ]);
    (section, speedup)
}

/// The tier-0.5 large-circuit leg: generated circuits synthesized at
/// ψ = 7, where collapse produces support-6/7 threshold queries that sit
/// above the tier-0 oracle's 5-variable reach. Each circuit runs the full
/// cached pipeline twice — tier 0.5 on (the default) and off — and the
/// leg asserts per circuit that the two netlists are byte-identical (the
/// tier answers only when its optimum is provably the merged ILP's unique
/// optimum) and that tier 0.5 never increases the ILP solve count.
///
/// Suite-level gates live in `main`: ≥ 50% of the remaining ILP solves
/// cut, at equal-or-better wall clock. Timing is min-of-N per leg
/// (N = 3 full, 2 quick) so one descheduled timeslice cannot fail the
/// wall-clock comparison.
///
/// Returns `(section, solves_off, solves_on, off_ms, on_ms)`.
fn measure_tier05_large(samples: usize) -> (Json, usize, usize, f64, f64) {
    let samples = samples.clamp(2, 3);
    let circuits: Vec<(&str, Network)> = vec![
        ("array_multiplier_5", array_multiplier(5)),
        ("majority_grid_12x6", majority_grid(12, 6)),
        ("parity_ladder_10x4", parity_ladder(10, 4)),
        ("lfsr_cone_12x16", lfsr_cone(12, 16)),
        ("ripple_adder_16", ripple_adder(16)),
        ("comparator_10", comparator(10)),
        (
            "random_widefan_96",
            random_network(
                "random_widefan_96",
                0x7105,
                &RandomNetOptions {
                    nodes: 96,
                    inputs: 20,
                    outputs: 10,
                    max_fanin: 5,
                    max_cubes: 6,
                    ..RandomNetOptions::default()
                },
            ),
        ),
    ];
    // Cache off, one thread: the realization cache would absorb every
    // duplicate query and shrink the baseline to a handful of solves, so
    // the leg runs the serial flow where each support-6/7 query reaches
    // the solver stack and the tier's cut is measured on the full stream.
    let on_config = TelsConfig {
        use_cache: false,
        num_threads: 1,
        psi: 7,
        ..TelsConfig::default()
    };
    assert!(
        on_config.tier05_active(),
        "large-leg configuration must engage tier 0.5"
    );
    let off_config = TelsConfig {
        use_tier05: false,
        ..on_config.clone()
    };
    let mut rows = Vec::new();
    let mut solves_off = 0usize;
    let mut solves_on = 0usize;
    let mut off_ms = 0.0;
    let mut on_ms = 0.0;
    println!(
        "\n{:<20} {:>10} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "tier05 circuit", "off ms", "on ms", "solves off", "solves on", "tier05", "negcache"
    );
    for (name, net) in &circuits {
        let off = measure(net, &off_config, samples);
        let on = measure(net, &on_config, samples);
        assert_eq!(
            on.tnet, off.tnet,
            "{name}: tier 0.5 changed the synthesized netlist"
        );
        assert!(
            on.stats.ilp_solves <= off.stats.ilp_solves,
            "{name}: tier 0.5 increased the ILP solve count"
        );
        println!(
            "{:<20} {:>10.2} {:>10.2} {:>10} {:>9} {:>8} {:>8}",
            name,
            off.millis,
            on.millis,
            off.stats.ilp_solves,
            on.stats.ilp_solves,
            on.stats.solver.tier05_hits + on.stats.solver.tier05_rejects,
            on.stats.solver.negcache_hits,
        );
        solves_off += off.stats.ilp_solves;
        solves_on += on.stats.ilp_solves;
        off_ms += off.millis;
        on_ms += on.millis;
        rows.push(Json::obj([
            ("circuit", Json::str(*name)),
            ("off_ms", Json::Num(off.millis)),
            ("on_ms", Json::Num(on.millis)),
            ("gates", Json::Num(on.gates as f64)),
            ("ilp_solves_off", Json::Num(off.stats.ilp_solves as f64)),
            ("ilp_solves_on", Json::Num(on.stats.ilp_solves as f64)),
            ("tier05_hits", Json::Num(on.stats.solver.tier05_hits as f64)),
            (
                "tier05_rejects",
                Json::Num(on.stats.solver.tier05_rejects as f64),
            ),
            (
                "negcache_hits",
                Json::Num(on.stats.solver.negcache_hits as f64),
            ),
        ]));
    }
    let pct = if solves_off > 0 {
        (1.0 - solves_on as f64 / solves_off as f64) * 1e2
    } else {
        0.0
    };
    println!(
        "tier 0.5 large suite: ILP solves {solves_off} (off) -> {solves_on} (on), a \
         {pct:.1}% reduction; wall clock {off_ms:.1} ms -> {on_ms:.1} ms"
    );
    let section = Json::obj([
        ("psi", Json::Num(7.0)),
        ("total_off_ms", Json::Num(off_ms)),
        ("total_on_ms", Json::Num(on_ms)),
        ("ilp_solves_off", Json::Num(solves_off as f64)),
        ("ilp_solves_on", Json::Num(solves_on as f64)),
        ("circuits", Json::Arr(rows)),
    ]);
    (section, solves_off, solves_on, off_ms, on_ms)
}

/// Peak resident set of this process in MiB, read from `/proc/self/status`
/// (`VmHWM`, the high-water mark). Returns 0.0 where procfs is absent —
/// the JSON field is informative and never gated.
fn peak_rss_mb() -> f64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("VmHWM:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|kb| kb.parse::<f64>().ok())
        })
        .map_or(0.0, |kb| kb / 1024.0)
}

/// The big-circuit scaling leg: one ≥10k-node generated circuit through
/// the full frontend — BLIF write, streaming parse, algebraic factoring,
/// cached synthesis, packed verification — with per-stage wall clock.
///
/// The parse stage is the streaming reader (`blif::parse_reader`), checked
/// byte-identical (under `write`) to the in-memory string parser on the
/// same input, so the number reported is the parser production code
/// actually runs on files. Factoring dominates end-to-end time at this
/// scale (eliminate/simplify are superlinear-but-bounded; see DESIGN
/// §2.14), which is exactly why the stage split is recorded.
///
/// A second measurement demonstrates insert-time structural hashing: the
/// ALU array generator duplicates its carry-generate/propagate gates
/// against the bitwise and/xor gates, and `StrashNet::from_network` must
/// strip at least those 2 gates per bit.
///
/// Returns `(section, parse_ms, pipeline_ms)` where `pipeline_ms` is
/// factoring + synthesis (the quick-mode regression gates ride on these).
fn measure_scaling() -> (Json, f64, f64) {
    let source = parity_ladder(160, 64);
    let nodes = source.num_logic_nodes();
    assert!(nodes >= 10_000, "scaling circuit shrank to {nodes} nodes");
    let text = blif::write(&source);

    // Streaming parse, min-of-3 (parsing is the cheapest stage and the
    // most timer-noise-prone).
    let mut parse_ms = f64::INFINITY;
    let mut parsed = None;
    for _ in 0..3 {
        let start = Instant::now();
        let net = blif::parse_reader(text.as_bytes()).expect("parse scaling circuit");
        parse_ms = parse_ms.min(start.elapsed().as_secs_f64() * 1e3);
        parsed = Some(net);
    }
    let parsed = parsed.expect("parsed at least once");
    // The writer materializes buffer nodes for outputs that alias internal
    // signals, so the reparse may carry a few more nodes — never fewer.
    assert!(parsed.num_logic_nodes() >= nodes);
    assert_eq!(
        blif::write(&blif::parse(&text).expect("string parse")),
        blif::write(&parsed),
        "streaming and string parsers disagree on the scaling circuit"
    );

    let start = Instant::now();
    let prepared = script_algebraic(&parsed);
    let factor_ms = start.elapsed().as_secs_f64() * 1e3;

    let config = TelsConfig {
        num_threads: 4,
        ..TelsConfig::default()
    };
    let start = Instant::now();
    let (tn, stats) =
        synthesize_with_stats(&prepared, &config).expect("synthesize scaling circuit");
    let synth_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    assert!(
        tn.verify_against(&source, 12, 512, 0xB16)
            .expect("simulate scaling circuit")
            .is_none(),
        "scaling-circuit synthesis differs from its source"
    );
    let verify_ms = start.elapsed().as_secs_f64() * 1e3;

    // Structural hashing on the duplicated-logic ALU array (~10.8k nodes):
    // per bit, g_i duplicates and_i and p_i duplicates xor_i, so the
    // arena must come out at least 2 gates per bit smaller.
    let width = 1200usize;
    let alu = alu_array(width);
    let alu_nodes = alu.num_logic_nodes();
    let start = Instant::now();
    let arena = StrashNet::from_network(&alu).expect("generator networks are acyclic");
    let strash_ms = start.elapsed().as_secs_f64() * 1e3;
    let alu_gates = arena.num_gates();
    assert!(
        alu_gates + 2 * width <= alu_nodes,
        "structural hashing removed only {} of the expected >= {} duplicate gates",
        alu_nodes - alu_gates,
        2 * width
    );
    let strash_pct = (1.0 - alu_gates as f64 / alu_nodes as f64) * 1e2;

    let rss_mb = peak_rss_mb();
    println!(
        "\nscaling: parity_ladder_160x64 ({nodes} nodes, {} BLIF bytes) — parse {parse_ms:.1} ms, \
         factor {factor_ms:.1} ms, synth {synth_ms:.1} ms ({} gates, {} ILP solves), \
         verify {verify_ms:.1} ms; peak RSS {rss_mb:.0} MiB",
        text.len(),
        tn.num_gates(),
        stats.ilp_solves
    );
    println!(
        "scaling: strash alu_array_{width}: {alu_nodes} -> {alu_gates} gates \
         ({strash_pct:.1}% removed, {} dedup hits, {strash_ms:.1} ms)",
        arena.dedup_hits()
    );

    let section = Json::obj([
        ("circuit", Json::str("parity_ladder_160x64")),
        ("nodes", Json::Num(nodes as f64)),
        ("blif_bytes", Json::Num(text.len() as f64)),
        ("parse_ms", Json::Num(parse_ms)),
        ("factor_ms", Json::Num(factor_ms)),
        ("synth_ms", Json::Num(synth_ms)),
        ("verify_ms", Json::Num(verify_ms)),
        ("gates", Json::Num(tn.num_gates() as f64)),
        ("ilp_solves", Json::Num(stats.ilp_solves as f64)),
        ("peak_rss_mb", Json::Num(rss_mb)),
        (
            "strash",
            Json::obj([
                ("circuit", Json::str("alu_array_1200")),
                ("nodes", Json::Num(alu_nodes as f64)),
                ("gates", Json::Num(alu_gates as f64)),
                ("reduction_pct", Json::Num(strash_pct)),
                ("dedup_hits", Json::Num(arena.dedup_hits() as f64)),
                ("strash_ms", Json::Num(strash_ms)),
            ]),
        ),
    ]);
    (section, parse_ms, factor_ms + synth_ms)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let samples = if quick { 1 } else { SAMPLES };
    // Build the tier-0 oracle before any clock starts: its one-time
    // construction cost must not be charged to the first circuit.
    tels_core::prewarm_tier0();

    // (name, network, ψ): the default ψ = 3 plus a few ψ = 5 entries,
    // where wider unate covers reach the structure pre-filter.
    let circuits: Vec<(String, Network, usize)> = vec![
        ("c17".to_string(), c17(), 3),
        ("alu_slice".to_string(), alu_slice(), 3),
        ("barrel_shifter_8".to_string(), barrel_shifter(8), 3),
        ("gray_code_8".to_string(), gray_code(8), 3),
        ("ripple_adder_8".to_string(), ripple_adder(8), 3),
        ("comparator_6".to_string(), comparator(6), 3),
        ("mux_tree_3".to_string(), mux_tree(3), 3),
        ("decoder_5".to_string(), decoder(5), 3),
        ("parity_tree_10".to_string(), parity_tree(10), 3),
        (
            "random_48".to_string(),
            random_network("random_48", 0x7e15, &RandomNetOptions::default()),
            3,
        ),
        (
            "random_96".to_string(),
            random_network(
                "random_96",
                0xcafe,
                &RandomNetOptions {
                    nodes: 96,
                    inputs: 20,
                    outputs: 10,
                    ..RandomNetOptions::default()
                },
            ),
            3,
        ),
        ("ripple_adder_8_psi5".to_string(), ripple_adder(8), 5),
        ("comparator_6_psi5".to_string(), comparator(6), 5),
        (
            "random_48_psi5".to_string(),
            random_network("random_48", 0x7e15, &RandomNetOptions::default()),
            5,
        ),
    ];

    let mut rows: Vec<Json> = Vec::new();
    let mut total_serial = 0.0;
    let mut total_cached = 0.0;
    let mut total_avoided = 0usize;
    let mut total_int_solves = 0usize;
    let mut total_fallbacks = 0usize;
    let mut total_merged = 0usize;
    let mut total_tier0_lookups = 0usize;
    let mut solves_tier0_on = 0usize;
    let mut solves_tier0_off = 0usize;
    let mut support_hist = [0u64; tels_core::SolverBreakdown::SUPPORT_BUCKETS];
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>8}",
        "circuit",
        "serial ms",
        "cached ms",
        "speedup",
        "solves",
        "tier0",
        "hits",
        "prefilter",
        "fallbk"
    );
    let mut traced_suite: Vec<(String, Network, TelsConfig)> = Vec::new();
    for (name, net, psi) in &circuits {
        let serial_config = TelsConfig {
            use_cache: false,
            num_threads: 1,
            use_tier0: false,
            psi: *psi,
            ..TelsConfig::default()
        };
        let cached_config = TelsConfig {
            use_cache: true,
            num_threads: 4,
            psi: *psi,
            ..TelsConfig::default()
        };
        let prepared = script_algebraic(net);
        let serial = measure(&prepared, &serial_config, samples);
        let cached = measure(&prepared, &cached_config, samples);
        // The oracle's bit-identicality contract, checked per circuit: the
        // cached configuration with tier 0 disabled (untimed, one sample)
        // must produce byte-for-byte the same netlist.
        let no_tier0 = measure(
            &prepared,
            &TelsConfig {
                use_tier0: false,
                ..cached_config.clone()
            },
            1,
        );
        assert_eq!(
            cached.tnet, no_tier0.tnet,
            "{name}: tier 0 changed the synthesized netlist"
        );
        traced_suite.push((name.clone(), prepared.clone(), cached_config));
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>7.2}x {:>8} {:>8} {:>8} {:>9} {:>8}",
            name,
            serial.millis,
            cached.millis,
            serial.millis / cached.millis,
            cached.stats.ilp_solves,
            cached.stats.solver.tier0_lookups,
            cached.stats.cache_hits,
            cached.stats.prefilter_rejections,
            serial.stats.solver.rational_fallbacks + cached.stats.solver.rational_fallbacks,
        );
        // Consistency gates: both configurations must emit the same gate
        // count and issue the same number of threshold queries (counters
        // thread-merge and tally identically on both paths, and tier 0
        // answers queries without changing which queries are issued).
        assert_eq!(
            serial.gates, cached.gates,
            "{name}: gates_cached != gates_serial"
        );
        assert_eq!(
            serial.stats.ilp_calls, cached.stats.ilp_calls,
            "{name}: cached and serial runs disagree on threshold-query count"
        );
        assert!(
            cached.stats.ilp_solves <= no_tier0.stats.ilp_solves,
            "{name}: tier 0 increased the ILP solve count"
        );
        total_serial += serial.millis;
        total_cached += cached.millis;
        total_avoided += cached.stats.ilp_avoided();
        total_tier0_lookups += cached.stats.solver.tier0_lookups;
        solves_tier0_on += cached.stats.ilp_solves;
        solves_tier0_off += no_tier0.stats.ilp_solves;
        for (bucket, &count) in support_hist
            .iter_mut()
            .zip(cached.stats.solver.support_hist.iter())
        {
            *bucket += u64::from(count);
        }
        for m in [&serial, &cached] {
            total_int_solves += m.stats.solver.int_fast_path_solves;
            total_fallbacks += m.stats.solver.rational_fallbacks;
            total_merged += m.stats.solver.chow_merged_vars;
        }
        rows.push(json_row(name, &serial, &cached));
    }

    // The tentpole acceptance gate: with tier 0 on, the full pipeline must
    // construct at most half the ILPs the same pipeline needs without it.
    let reduction_pct = if solves_tier0_off > 0 {
        (1.0 - solves_tier0_on as f64 / solves_tier0_off as f64) * 1e2
    } else {
        0.0
    };
    println!(
        "tier 0: {total_tier0_lookups} lookups; suite ILP solves {solves_tier0_off} (off) -> \
         {solves_tier0_on} (on), a {reduction_pct:.1}% reduction"
    );
    assert!(
        solves_tier0_on * 2 <= solves_tier0_off,
        "tier 0 cut ILP solves only from {solves_tier0_off} to {solves_tier0_on} (< 50%)"
    );

    let speedup = total_serial / total_cached;
    let fallback_rate = if total_int_solves + total_fallbacks > 0 {
        total_fallbacks as f64 / (total_int_solves + total_fallbacks) as f64
    } else {
        0.0
    };
    println!(
        "\ntotal: serial {total_serial:.1} ms, cached {total_cached:.1} ms — {speedup:.2}x \
         ({total_avoided} ILP solves avoided, {total_merged} Chow-merged vars, \
         {total_fallbacks} rational fallbacks / {:.2}% rate)",
        fallback_rate * 1e2
    );

    let (suite_untraced, suite_traced) = measure_trace_overhead(&traced_suite);
    let overhead_pct = (suite_traced - suite_untraced) / suite_untraced * 1e2;
    println!(
        "trace overhead: untraced {suite_untraced:.1} ms, traced {suite_traced:.1} ms \
         ({overhead_pct:+.1}%)"
    );

    let (suite_metrics_off, suite_metrics_on) = measure_metrics_overhead(&traced_suite);
    let metrics_overhead_pct = (suite_metrics_on - suite_metrics_off) / suite_metrics_off * 1e2;
    println!(
        "metrics overhead: off {suite_metrics_off:.1} ms, on {suite_metrics_on:.1} ms \
         ({metrics_overhead_pct:+.1}%)"
    );

    let (perturb_section, perturb_speedup) = measure_perturb();

    let (tier05_section, t05_off, t05_on, t05_off_ms, t05_on_ms) = measure_tier05_large(samples);
    let large_reduction_pct = if t05_off > 0 {
        (1.0 - t05_on as f64 / t05_off as f64) * 1e2
    } else {
        0.0
    };
    // The tier-0.5 acceptance gates: on the large suite the tier must cut
    // at least half the ILP solves tier 0 leaves behind, and it must pay
    // for itself — the tier-on leg may not be slower than the tier-off
    // leg beyond a 5% scheduler-noise guard on the min-of-N timings.
    assert!(
        t05_on * 2 <= t05_off,
        "tier 0.5 cut large-suite ILP solves only from {t05_off} to {t05_on} (< 50%)"
    );
    assert!(
        t05_on_ms <= t05_off_ms * 1.05,
        "tier 0.5 slowed the large suite: {t05_on_ms:.1} ms on vs {t05_off_ms:.1} ms off"
    );

    let (scaling_section, scaling_parse_ms, scaling_pipeline_ms) = measure_scaling();

    if quick {
        // Quick (CI) mode: regression-gate the oracle against the
        // committed baseline instead of rewriting it — the suite's solve
        // count with tier 0 on must stay at most half the committed
        // tier-0-off count.
        match std::fs::read_to_string("BENCH_synthesis.json") {
            Ok(text) => {
                let doc = tels_trace::json::parse(&text).ok();
                let committed_off = doc
                    .as_ref()
                    .and_then(|doc| doc.get("ilp_solves_tier0_off").and_then(Json::as_u64));
                match committed_off {
                    Some(committed_off) => assert!(
                        solves_tier0_on as u64 * 2 <= committed_off,
                        "suite ILP solves {solves_tier0_on} not halved vs committed \
                         tier-0-off baseline {committed_off}"
                    ),
                    None => eprintln!(
                        "synth_pipeline: committed BENCH_synthesis.json predates the \
                         tier-0 keys; skipping the solve-reduction gate"
                    ),
                }
                // The committed reduction, readable in either form: the
                // historical bare fraction (`"ilp_solve_reduction": 1`) or
                // the current object with before/after counts and a `pct`
                // field. A small slack absorbs benign suite drift; real
                // regressions (tier 0 losing coverage) blow well past it.
                let committed_pct = doc
                    .as_ref()
                    .and_then(|doc| doc.get("ilp_solve_reduction"))
                    .and_then(|v| match v {
                        Json::Num(frac) => Some(frac * 1e2),
                        obj => obj.get("pct").and_then(Json::as_f64),
                    });
                match committed_pct {
                    Some(committed_pct) => assert!(
                        reduction_pct >= committed_pct - 5.0,
                        "tier-0 ILP solve reduction {reduction_pct:.1}% regressed vs \
                         committed {committed_pct:.1}%"
                    ),
                    None => eprintln!(
                        "synth_pipeline: committed BENCH_synthesis.json has no \
                         ilp_solve_reduction in either form; skipping the pct gate"
                    ),
                }
                // The tier-0.5 large-suite reduction, readable in either
                // form like the tier-0 key above: a bare fraction or the
                // `{before, after, pct}` object. Files committed before the
                // tier-0.5 leg existed have neither — skip, don't fail.
                let committed_large = doc
                    .as_ref()
                    .and_then(|doc| doc.get("ilp_solve_reduction_large"))
                    .and_then(|v| match v {
                        Json::Num(frac) => Some(frac * 1e2),
                        obj => obj.get("pct").and_then(Json::as_f64),
                    });
                match committed_large {
                    Some(committed) => assert!(
                        large_reduction_pct >= committed - 5.0,
                        "tier-0.5 large-suite ILP solve reduction {large_reduction_pct:.1}% \
                         regressed vs committed {committed:.1}%"
                    ),
                    None => eprintln!(
                        "synth_pipeline: committed BENCH_synthesis.json has no \
                         ilp_solve_reduction_large in either form; skipping the gate"
                    ),
                }
                // The Monte Carlo scaling gate: the packed engine's speedup
                // over the scalar path may not regress more than 10% below
                // the committed baseline (the bit-identical-rate assert
                // already ran inside `measure_perturb`).
                let committed_perturb = doc
                    .as_ref()
                    .and_then(|doc| doc.get("perturb"))
                    .and_then(|p| p.get("speedup"))
                    .and_then(Json::as_f64);
                match committed_perturb {
                    Some(committed) => {
                        let mut best = perturb_speedup;
                        if best < committed * 0.9 {
                            // One remeasure before failing: the gate exists
                            // to catch code regressions, not a noisy
                            // neighbor on the CI machine.
                            eprintln!(
                                "synth_pipeline: measured {best:.1}x below the Monte Carlo \
                                 gate ({:.1}x); remeasuring once",
                                committed * 0.9
                            );
                            let (_, retry) = measure_perturb();
                            best = best.max(retry);
                        }
                        assert!(
                            best >= committed * 0.9,
                            "packed Monte Carlo speedup {best:.1}x regressed more \
                             than 10% vs committed {committed:.1}x"
                        );
                    }
                    None => eprintln!(
                        "synth_pipeline: committed BENCH_synthesis.json has no perturb \
                         section; skipping the Monte Carlo gate"
                    ),
                }
                // The big-circuit scaling gates: parse and factoring+
                // synthesis wall clock on the 10k-node circuit may not blow
                // up versus the committed baseline. The tolerances are
                // deliberately loose (3x plus a floor) — the gate exists to
                // catch accidentally-quadratic regressions, which at this
                // scale overshoot by orders of magnitude, not to litigate
                // scheduler noise. (The absolute properties — ≥10k nodes,
                // streaming/string byte identity, the ≥2-gates-per-bit
                // strash reduction, functional verification — were already
                // asserted inside `measure_scaling`.)
                let scaling = doc.as_ref().and_then(|doc| doc.get("scaling"));
                match scaling {
                    Some(scaling) => {
                        if let Some(committed) = scaling.get("parse_ms").and_then(Json::as_f64) {
                            assert!(
                                scaling_parse_ms <= committed * 3.0 + 50.0,
                                "10k-node streaming parse took {scaling_parse_ms:.1} ms vs \
                                 committed {committed:.1} ms"
                            );
                        }
                        let committed_pipeline = scaling
                            .get("factor_ms")
                            .and_then(Json::as_f64)
                            .and_then(|f| {
                                scaling
                                    .get("synth_ms")
                                    .and_then(Json::as_f64)
                                    .map(|s| f + s)
                            });
                        if let Some(committed) = committed_pipeline {
                            assert!(
                                scaling_pipeline_ms <= committed * 3.0 + 500.0,
                                "10k-node factoring+synthesis took {scaling_pipeline_ms:.1} ms \
                                 vs committed {committed:.1} ms"
                            );
                        }
                    }
                    None => eprintln!(
                        "synth_pipeline: committed BENCH_synthesis.json has no scaling \
                         section; skipping the big-circuit timing gates"
                    ),
                }
            }
            Err(e) => eprintln!("synth_pipeline: no committed BENCH_synthesis.json ({e})"),
        }
    } else {
        let doc = Json::obj([
            ("benchmark", Json::str("synth_pipeline")),
            (
                "serial",
                Json::obj([
                    ("use_cache", Json::Bool(false)),
                    ("num_threads", Json::Num(1.0)),
                    ("use_tier0", Json::Bool(false)),
                ]),
            ),
            (
                "cached",
                Json::obj([
                    ("use_cache", Json::Bool(true)),
                    ("num_threads", Json::Num(4.0)),
                    ("use_tier0", Json::Bool(true)),
                ]),
            ),
            ("total_serial_ms", Json::Num(total_serial)),
            ("total_cached_ms", Json::Num(total_cached)),
            ("speedup", Json::Num(speedup)),
            ("ilp_avoided", Json::Num(total_avoided as f64)),
            ("tier0_lookups", Json::Num(total_tier0_lookups as f64)),
            ("ilp_solves_tier0_on", Json::Num(solves_tier0_on as f64)),
            ("ilp_solves_tier0_off", Json::Num(solves_tier0_off as f64)),
            (
                "ilp_solve_reduction",
                Json::obj([
                    ("before", Json::Num(solves_tier0_off as f64)),
                    ("after", Json::Num(solves_tier0_on as f64)),
                    ("pct", Json::Num(reduction_pct)),
                ]),
            ),
            (
                "query_support_hist",
                Json::Arr(support_hist.iter().map(|&c| Json::Num(c as f64)).collect()),
            ),
            ("chow_merged_vars", Json::Num(total_merged as f64)),
            ("int_fast_path_solves", Json::Num(total_int_solves as f64)),
            ("rational_fallbacks", Json::Num(total_fallbacks as f64)),
            ("suite_ms_untraced", Json::Num(suite_untraced)),
            ("suite_ms_traced", Json::Num(suite_traced)),
            ("trace_overhead_pct", Json::Num(overhead_pct)),
            ("suite_ms_metrics_off", Json::Num(suite_metrics_off)),
            ("suite_ms_metrics_on", Json::Num(suite_metrics_on)),
            ("metrics_overhead_pct", Json::Num(metrics_overhead_pct)),
            (
                "ilp_solve_reduction_large",
                Json::obj([
                    ("before", Json::Num(t05_off as f64)),
                    ("after", Json::Num(t05_on as f64)),
                    ("pct", Json::Num(large_reduction_pct)),
                ]),
            ),
            ("perturb", perturb_section),
            ("tier05_large", tier05_section),
            ("scaling", scaling_section),
            ("circuits", Json::Arr(rows)),
        ]);
        let mut json = doc.pretty();
        json.push('\n');
        std::fs::write("BENCH_synthesis.json", &json).expect("write BENCH_synthesis.json");
        println!("wrote BENCH_synthesis.json");
    }
    assert!(
        fallback_rate <= MAX_FALLBACK_RATE,
        "rational-fallback rate {:.2}% exceeds the {:.0}% sanity bound",
        fallback_rate * 1e2,
        MAX_FALLBACK_RATE * 1e2
    );
    assert!(
        speedup >= 1.0,
        "cached pipeline slower than serial ({speedup:.2}x)"
    );
    // The zero-overhead-when-cheap bar for live metrics: enabling the
    // instrument registry may cost at most 2% wall clock on the synthesis
    // suite (min-of-3 timing above keeps scheduler noise out of the gate).
    assert!(
        metrics_overhead_pct <= 2.0,
        "metrics overhead {metrics_overhead_pct:+.1}% exceeds the 2% budget"
    );
    // The word-parallel engine's acceptance bar: ≥ 20x Monte Carlo
    // throughput on the large-circuit suite at equal seeds. Quick mode
    // measures too little work for an absolute bound and uses the
    // committed-baseline gate above instead.
    assert!(
        quick || perturb_speedup >= 20.0,
        "packed Monte Carlo speedup {perturb_speedup:.1}x below the 20x bar"
    );
}
