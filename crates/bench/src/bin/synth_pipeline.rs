//! Benchmarks the synthesis pipeline with and without the canonical
//! realization cache, ILP pre-filters, and warming threads, and writes the
//! results to `BENCH_synthesis.json`.
//!
//! Two configurations are compared over a mixed circuit suite:
//!
//! * **serial**: `use_cache = false`, `num_threads = 1` — the pre-cache
//!   flow, every threshold query solved by the ILP in its original order;
//! * **cached**: `use_cache = true`, `num_threads = 4` — the canonical
//!   cache with the 2-monotonicity pre-filter and the level-parallel
//!   warming pass.
//!
//! Both runs of every circuit are checked functionally equivalent against
//! the source network before being timed.
//!
//! Run with `cargo run --release -p tels-bench --bin synth_pipeline`.

use std::time::Instant;

use tels_circuits::{
    alu_slice, barrel_shifter, c17, comparator, decoder, gray_code, mux_tree, parity_tree,
    random_network, ripple_adder, RandomNetOptions,
};
use tels_core::{synthesize_with_stats, SynthStats, TelsConfig};
use tels_logic::opt::script_algebraic;
use tels_logic::Network;

/// Timed samples per configuration; the minimum is reported.
const SAMPLES: usize = 5;

struct Measurement {
    millis: f64,
    gates: usize,
    stats: SynthStats,
}

fn measure(net: &Network, config: &TelsConfig) -> Measurement {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        let (tn, stats) = synthesize_with_stats(net, config).expect("synthesis failed");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(
            tn.verify_against(net, 12, 1024, 0xBE)
                .expect("simulation failed")
                .is_none(),
            "synthesized network differs from input"
        );
        if elapsed < best {
            best = elapsed;
            result = Some((tn.num_gates(), stats));
        }
    }
    let (gates, stats) = result.expect("at least one sample");
    Measurement {
        millis: best,
        gates,
        stats,
    }
}

fn json_row(name: &str, serial: &Measurement, cached: &Measurement) -> String {
    format!(
        concat!(
            "    {{\"circuit\": \"{}\", \"serial_ms\": {:.3}, \"cached_ms\": {:.3}, ",
            "\"speedup\": {:.2}, \"gates_serial\": {}, \"gates_cached\": {}, ",
            "\"ilp_calls\": {}, \"ilp_solves_serial\": {}, \"ilp_solves_cached\": {}, ",
            "\"cache_hits\": {}, \"prefilter_rejections\": {}, \"ilp_avoided\": {}}}"
        ),
        name,
        serial.millis,
        cached.millis,
        serial.millis / cached.millis,
        serial.gates,
        cached.gates,
        cached.stats.ilp_calls,
        serial.stats.ilp_solves,
        cached.stats.ilp_solves,
        cached.stats.cache_hits,
        cached.stats.prefilter_rejections,
        cached.stats.ilp_avoided(),
    )
}

fn main() {
    // (name, network, ψ): the default ψ = 3 plus a few ψ = 5 entries,
    // where wider unate covers reach the 2-monotonicity pre-filter.
    let circuits: Vec<(String, Network, usize)> = vec![
        ("c17".to_string(), c17(), 3),
        ("alu_slice".to_string(), alu_slice(), 3),
        ("barrel_shifter_8".to_string(), barrel_shifter(8), 3),
        ("gray_code_8".to_string(), gray_code(8), 3),
        ("ripple_adder_8".to_string(), ripple_adder(8), 3),
        ("comparator_6".to_string(), comparator(6), 3),
        ("mux_tree_3".to_string(), mux_tree(3), 3),
        ("decoder_5".to_string(), decoder(5), 3),
        ("parity_tree_10".to_string(), parity_tree(10), 3),
        (
            "random_48".to_string(),
            random_network("random_48", 0x7e15, &RandomNetOptions::default()),
            3,
        ),
        (
            "random_96".to_string(),
            random_network(
                "random_96",
                0xcafe,
                &RandomNetOptions {
                    nodes: 96,
                    inputs: 20,
                    outputs: 10,
                    ..RandomNetOptions::default()
                },
            ),
            3,
        ),
        ("ripple_adder_8_psi5".to_string(), ripple_adder(8), 5),
        ("comparator_6_psi5".to_string(), comparator(6), 5),
        (
            "random_48_psi5".to_string(),
            random_network("random_48", 0x7e15, &RandomNetOptions::default()),
            5,
        ),
    ];

    let mut rows = Vec::new();
    let mut total_serial = 0.0;
    let mut total_cached = 0.0;
    let mut total_avoided = 0usize;
    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "circuit", "serial ms", "cached ms", "speedup", "solves", "hits", "prefilter"
    );
    for (name, net, psi) in &circuits {
        let serial_config = TelsConfig {
            use_cache: false,
            num_threads: 1,
            psi: *psi,
            ..TelsConfig::default()
        };
        let cached_config = TelsConfig {
            use_cache: true,
            num_threads: 4,
            psi: *psi,
            ..TelsConfig::default()
        };
        let prepared = script_algebraic(net);
        let serial = measure(&prepared, &serial_config);
        let cached = measure(&prepared, &cached_config);
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>7.2}x {:>8} {:>8} {:>9}",
            name,
            serial.millis,
            cached.millis,
            serial.millis / cached.millis,
            cached.stats.ilp_solves,
            cached.stats.cache_hits,
            cached.stats.prefilter_rejections,
        );
        total_serial += serial.millis;
        total_cached += cached.millis;
        total_avoided += cached.stats.ilp_avoided();
        rows.push(json_row(name, &serial, &cached));
    }

    let speedup = total_serial / total_cached;
    println!(
        "\ntotal: serial {total_serial:.1} ms, cached {total_cached:.1} ms — {speedup:.2}x \
         ({total_avoided} ILP solves avoided)"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"synth_pipeline\",\n  \"serial\": {{\"use_cache\": false, \
         \"num_threads\": 1}},\n  \"cached\": {{\"use_cache\": true, \"num_threads\": 4}},\n  \
         \"total_serial_ms\": {total_serial:.3},\n  \"total_cached_ms\": {total_cached:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"ilp_avoided\": {total_avoided},\n  \"circuits\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_synthesis.json", &json).expect("write BENCH_synthesis.json");
    println!("wrote BENCH_synthesis.json");
    assert!(
        speedup >= 1.0,
        "cached pipeline slower than serial ({speedup:.2}x)"
    );
}
