//! Regenerates Fig. 12 of the paper: the trade-off between failure rate and
//! network area as the defect tolerance δ_on grows, at a fixed variation
//! multiplier v = 0.8.
//!
//! Expected shape: failure rate falls with δ_on while total area rises —
//! robustness is bought with bigger weights (Eq. 14 area model).
//!
//! Run with `cargo run --release -p tels-bench --bin fig12`.

use tels_circuits::paper_suite;
use tels_core::perturb::{failure_rate, PerturbOptions};
use tels_core::{synthesize, TelsConfig};
use tels_logic::opt::script_algebraic;

fn main() {
    let v = 0.8;
    println!("Fig. 12 reproduction: failure rate and area vs delta_on (v = {v})");
    println!(
        "{:<10} {:>14} {:>12} {:>14}",
        "delta_on", "failure rate %", "total area", "area ratio"
    );
    println!("{}", "-".repeat(54));

    let mut base_area = 0u64;
    for delta_on in 0..=3i64 {
        let config = TelsConfig {
            delta_on,
            ..TelsConfig::default()
        };
        let mut total_area = 0u64;
        let mut failing = 0usize;
        let mut count = 0usize;
        for b in paper_suite() {
            if b.name == "i10_like" {
                continue; // keep the Monte-Carlo loop fast
            }
            let algebraic = script_algebraic(&b.network);
            let tn = synthesize(&algebraic, &config).expect("TELS synthesis");
            total_area += tn.area();
            let opts = PerturbOptions {
                variation: v,
                trials: 20,
                exhaustive_limit: 10,
                vectors: 256,
                seed: 0xf1612 ^ b.name.len() as u64,
                threads: 1,
            };
            let rate = failure_rate(&tn, &b.network, &opts).expect("interfaces match");
            if rate > 0.0 {
                failing += 1;
            }
            count += 1;
        }
        if delta_on == 0 {
            base_area = total_area;
        }
        println!(
            "{:<10} {:>14.1} {:>12} {:>14.3}",
            delta_on,
            100.0 * failing as f64 / count as f64,
            total_area,
            total_area as f64 / base_area as f64
        );
    }
    println!();
    println!("paper: failure rate falls and area grows as delta_on increases");
}
