//! Regenerates Fig. 11 of the paper: circuit failure rate under parametric
//! weight variations, for δ_on ∈ 0..=3 (δ_off fixed at 1) and variation
//! multiplier v swept over (0, 1.2].
//!
//! Each benchmark is synthesized once per δ_on; every Monte-Carlo trial
//! disturbs all weights by `w′ = w + v·U(−0.5, 0.5)` and simulates. The
//! failure rate is the percentage of benchmarks that fail on at least one
//! simulated vector — the paper's definition (§VI-C).
//!
//! Expected shape: the failure rate rises with v and falls as δ_on grows.
//!
//! Run with `cargo run --release -p tels-bench --bin fig11`.

use tels_circuits::paper_suite;
use tels_core::perturb::{Disturbance, PerturbContext, PerturbOptions};
use tels_core::{synthesize, TelsConfig, ThresholdNetwork};
use tels_logic::opt::script_algebraic;
use tels_logic::Network;

/// Synthesized networks per δ_on, excluding the over-sized i10 stand-in to
/// keep the Monte-Carlo loop fast.
fn synthesize_suite(delta_on: i64) -> Vec<(String, Network, ThresholdNetwork)> {
    paper_suite()
        .into_iter()
        .filter(|b| b.name != "i10_like")
        .map(|b| {
            let config = TelsConfig {
                delta_on,
                ..TelsConfig::default()
            };
            let algebraic = script_algebraic(&b.network);
            let tn = synthesize(&algebraic, &config).expect("TELS synthesis");
            (b.name.to_string(), b.network, tn)
        })
        .collect()
}

fn main() {
    let variations = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2];
    let trials_per_benchmark = 20;

    println!("Fig. 11 reproduction: failure rate (%) vs variation multiplier v");
    print!("{:<8}", "v");
    for d in 0..=3 {
        print!("{:>12}", format!("delta_on={d}"));
    }
    println!();
    println!("{}", "-".repeat(60));

    for &v in &variations {
        print!("{:<8}", v);
        for delta_on in 0..=3i64 {
            let suite = synthesize_suite(delta_on);
            let mut failing_benchmarks = 0usize;
            for (name, reference, tn) in &suite {
                let opts = PerturbOptions {
                    variation: v,
                    trials: trials_per_benchmark,
                    exhaustive_limit: 10,
                    vectors: 256,
                    seed: 0xf1611 ^ name.len() as u64,
                    threads: 1,
                };
                let ctx = PerturbContext::new(tn, reference, &opts).expect("interfaces match");
                let mut scratch = ctx.scratch();
                let mut dist = Disturbance::new();
                let failed = (0..opts.trials as u64)
                    .any(|t| ctx.trial_fails(tn, t, &mut dist, &mut scratch));
                if failed {
                    failing_benchmarks += 1;
                }
            }
            let rate = 100.0 * failing_benchmarks as f64 / suite.len() as f64;
            print!("{:>12.1}", rate);
        }
        println!();
    }
    println!();
    println!("paper: failure rate decreases as delta_on increases (robustness)");
}
