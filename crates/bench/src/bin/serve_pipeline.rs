//! Benchmarks the `tels serve` daemon path against per-invocation one-shot
//! synthesis and writes the results to `BENCH_serve.json`.
//!
//! Four measurements over the Table-I benchmark suite:
//!
//! * **one-shot rate**: every circuit synthesized by spawning the real
//!   `tels` binary per invocation (process startup, tier-0 construction,
//!   empty cache, simulation verify — the costs the daemon amortizes).
//!   When the binary is not built, falls back to an in-process emulation
//!   (no spawn cost) and skips the throughput gate, noting it in the JSON.
//! * **serve throughput**: an in-process [`ServeSession`] fed by 1, 4, and
//!   16 concurrent client threads, cold (fresh caches) and warm (suite
//!   already seen), in circuits/second.
//! * **persisted-warm**: the caches saved to disk, reloaded into a fresh
//!   session, and the first pass over the suite timed — what a daemon
//!   restart with `--cache-file` delivers.
//! * **warming A/B**: the work-stealing scheduler warming pass
//!   ([`warm_cache_scheduler`]) against the preserved pre-scheduler shared
//!   queue pass ([`warm_cache_queue`]) on identical fresh caches.
//!
//! The workload is the *synthesis service* one: clients submit
//! pre-factored networks (`factor: false`, the one-shot side gets the
//! same files with `--no-factor`). Algebraic factoring is a one-time
//! front-end cost — on the Table-I suite it is ~60x the synthesis time —
//! so folding it into every job would measure the factoring kernel, not
//! the daemon. Both sides also run with `use_tier0: false` (the CLI's
//! `--no-tier0`): under the default config the tier-0 truth-table oracle
//! answers every small-support query without touching the realization
//! cache, so the cache the daemon shares and persists would sit idle.
//! Disabling it routes every realization through the ILP + cache path —
//! the workload the daemon exists for — and does not change any answer
//! (the fuzz oracle asserts tier0-on/off byte identity, and `CacheKey`
//! ignores the flag). One-shot `tels synth` always simulation-verifies;
//! daemon jobs verify only on request (`verify` defaults to false) —
//! that asymmetry is the product default on both sides and is noted in
//! the JSON.
//!
//! The run doubles as a determinism gate: for every suite circuit the
//! served `.tnet` bytes must equal the one-shot reference at pool width 1
//! and at full width, cold and persisted-warm. Acceptance gates: warm
//! serve throughput at least 3x the one-shot process rate (when the real
//! binary is available), and scheduler warming no slower than the queue
//! pass (with a noise allowance).
//!
//! Run with `cargo run --release -p tels-bench --bin serve_pipeline`; pass
//! `--quick` for a single-sample smoke run that skips the JSON write.

use std::path::PathBuf;
use std::time::Instant;

use tels_circuits::paper_suite;
use tels_core::{warm_cache_queue, warm_cache_scheduler, RealizationCache, TelsConfig};
use tels_logic::blif;
use tels_logic::opt::script_algebraic;
use tels_serve::protocol::JobRequest;
use tels_serve::{ServeOptions, ServeSession};
use tels_trace::json::Json;

/// Warming A/B samples per implementation; the minimum is reported.
const WARM_SAMPLES: usize = 5;

/// Suite passes each client thread submits in a throughput measurement.
const ROUNDS: usize = 3;

/// Noise allowance for the scheduler-vs-queue warming gate: the scheduler
/// pass must not be slower than the queue pass by more than this factor.
const WARMING_TOLERANCE: f64 = 1.25;

/// The benchmark configuration: tier-0 off so realizations go through the
/// shared cache (see the module docs); everything else paper defaults.
fn bench_config() -> TelsConfig {
    TelsConfig {
        use_tier0: false,
        ..TelsConfig::default()
    }
}

/// A serve job for one (pre-factored) suite circuit under the benchmark
/// configuration.
fn job(blif: &str) -> JobRequest {
    JobRequest {
        blif: blif.to_string(),
        factor: false,
        config: bench_config(),
        ..JobRequest::default()
    }
}

/// Submits `rounds` passes over the suite from each of `clients` threads
/// and returns (wall ms, jobs completed).
fn run_clients(
    session: &ServeSession,
    blifs: &[String],
    clients: usize,
    rounds: usize,
) -> (f64, usize) {
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(|| {
                for _ in 0..rounds {
                    for text in blifs {
                        session.submit(&job(text)).expect("serve job failed");
                    }
                }
            });
        }
    });
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, clients * rounds * blifs.len())
}

/// Synthesizes every circuit through a session once, returning the `.tnet`
/// text per circuit (suite order).
fn serve_suite_tnets(session: &ServeSession, blifs: &[String]) -> Vec<String> {
    blifs
        .iter()
        .map(|text| {
            session
                .submit(&job(text))
                .expect("serve job failed")
                .tn
                .to_tnet()
        })
        .collect()
}

/// Locates the release `tels` binary next to this bench binary, if built.
fn find_tels_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let candidate = exe.parent()?.join("tels");
    candidate.is_file().then_some(candidate)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rounds = if quick { 1 } else { ROUNDS };
    let warm_samples = if quick { 1 } else { WARM_SAMPLES };
    tels_core::prewarm_tier0();

    let suite = paper_suite();
    let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
    // Factor once up front; every job (serve and one-shot alike) consumes
    // the pre-factored text. See the module docs for why.
    let prepared: Vec<_> = suite.iter().map(|b| script_algebraic(&b.network)).collect();
    let blifs: Vec<String> = prepared.iter().map(blif::write).collect();

    // --- One-shot reference: bytes and per-invocation rate. -------------
    let dir = std::env::temp_dir().join(format!("tels-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    let tels_bin = find_tels_binary();
    let mut one_shot_ms = 0.0;
    let mut references: Vec<String> = Vec::with_capacity(suite.len());
    match &tels_bin {
        Some(bin) => {
            for (name, text) in names.iter().zip(&blifs) {
                let in_path = dir.join(format!("{name}.blif"));
                let out_path = dir.join(format!("{name}.tnet"));
                std::fs::write(&in_path, text).expect("write blif");
                let start = Instant::now();
                let status = std::process::Command::new(bin)
                    .args([
                        "synth",
                        "--no-tier0",
                        "--no-factor",
                        in_path.to_str().unwrap(),
                        "-o",
                        out_path.to_str().unwrap(),
                    ])
                    .stderr(std::process::Stdio::null())
                    .status()
                    .expect("spawn tels");
                one_shot_ms += start.elapsed().as_secs_f64() * 1e3;
                assert!(status.success(), "{name}: one-shot tels synth failed");
                references.push(std::fs::read_to_string(&out_path).expect("read tnet"));
            }
        }
        None => {
            eprintln!(
                "serve_pipeline: target/release/tels not built; timing an in-process \
                 one-shot emulation (no spawn cost) and skipping the 3x throughput gate"
            );
            for (name, text) in names.iter().zip(&blifs) {
                let start = Instant::now();
                let net = blif::parse(text).expect("parse blif");
                let (tn, _) = tels_core::synthesize_with_stats(&net, &bench_config())
                    .expect("one-shot synthesis failed");
                assert!(
                    tn.verify_against(&net, 12, 1024, 1)
                        .expect("simulation failed")
                        .is_none(),
                    "{name}: one-shot verify failed"
                );
                one_shot_ms += start.elapsed().as_secs_f64() * 1e3;
                references.push(tn.to_tnet());
            }
        }
    }
    let one_shot_rate = suite.len() as f64 / (one_shot_ms / 1e3);
    println!(
        "one-shot ({}): {} circuits in {one_shot_ms:.1} ms = {one_shot_rate:.1}/s",
        if tels_bin.is_some() {
            "process"
        } else {
            "in-process"
        },
        suite.len()
    );

    // --- Byte identity: pool widths 1 and auto, cold. -------------------
    for threads in [1usize, 0] {
        let session = ServeSession::new(ServeOptions {
            threads,
            ..ServeOptions::default()
        })
        .expect("session");
        let served = serve_suite_tnets(&session, &blifs);
        for ((name, served), reference) in names.iter().zip(&served).zip(&references) {
            assert_eq!(
                served,
                reference,
                "{name}: served .tnet differs from one-shot at {} pool threads",
                session.threads()
            );
        }
        println!(
            "byte identity: {} circuits match one-shot at {} pool threads (cold)",
            suite.len(),
            session.threads()
        );
    }

    // --- Serve throughput: cold and warm at 1/4/16 clients. -------------
    let client_counts: &[usize] = if quick { &[1, 4] } else { &[1, 4, 16] };
    let mut serve_rows: Vec<Json> = Vec::new();
    let mut best_warm_rate = 0.0f64;
    let mut last_stats: Option<Json> = None;
    for &clients in client_counts {
        // Cold: fresh session, caches start empty.
        let session = ServeSession::new(ServeOptions::default()).expect("session");
        let (cold_ms, cold_jobs) = run_clients(&session, &blifs, clients, rounds);
        let cold_rate = cold_jobs as f64 / (cold_ms / 1e3);
        // Warm: same session has now seen the whole suite.
        let (warm_ms, warm_jobs) = run_clients(&session, &blifs, clients, rounds);
        let warm_rate = warm_jobs as f64 / (warm_ms / 1e3);
        best_warm_rate = best_warm_rate.max(warm_rate);
        println!(
            "serve x{clients:<2}: cold {cold_jobs} jobs in {cold_ms:>8.1} ms = {cold_rate:>7.1}/s | \
             warm {warm_jobs} jobs in {warm_ms:>8.1} ms = {warm_rate:>7.1}/s"
        );
        serve_rows.push(Json::obj([
            ("clients", Json::Num(clients as f64)),
            ("cold_ms", Json::Num(cold_ms)),
            ("cold_jobs", Json::Num(cold_jobs as f64)),
            ("cold_jobs_per_sec", Json::Num(cold_rate)),
            ("warm_ms", Json::Num(warm_ms)),
            ("warm_jobs", Json::Num(warm_jobs as f64)),
            ("warm_jobs_per_sec", Json::Num(warm_rate)),
        ]));
        last_stats = Some(session.stats_json());
    }

    // --- Persisted-warm: save, reload into a fresh session, first pass. --
    let cache_path = dir.join("cache.bin");
    let seed = ServeSession::new(ServeOptions {
        threads: 0,
        cache_file: Some(cache_path.clone()),
        ..ServeOptions::default()
    })
    .expect("session");
    let _ = serve_suite_tnets(&seed, &blifs);
    let persisted = seed.persist_now().expect("save cache").unwrap_or(0);
    drop(seed);
    let reloaded = ServeSession::new(ServeOptions {
        threads: 0,
        cache_file: Some(cache_path.clone()),
        ..ServeOptions::default()
    })
    .expect("reload session");
    let start = Instant::now();
    let served = serve_suite_tnets(&reloaded, &blifs);
    let persisted_ms = start.elapsed().as_secs_f64() * 1e3;
    let persisted_rate = suite.len() as f64 / (persisted_ms / 1e3);
    for ((name, served), reference) in names.iter().zip(&served).zip(&references) {
        assert_eq!(
            served, reference,
            "{name}: persisted-warm .tnet differs from one-shot"
        );
    }
    println!(
        "persisted-warm: {persisted} entries reloaded; first pass {persisted_ms:.1} ms = \
         {persisted_rate:.1}/s (bytes identical)"
    );

    // --- Warming A/B: scheduler vs preserved queue pass. ----------------
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(4);
    let mut sched_ms = f64::INFINITY;
    let mut queue_ms = f64::INFINITY;
    for _ in 0..warm_samples {
        let mut total = 0.0;
        for p in &prepared {
            let cache = RealizationCache::new();
            let start = Instant::now();
            warm_cache_scheduler(p, &bench_config(), &cache, threads).expect("warm");
            total += start.elapsed().as_secs_f64() * 1e3;
        }
        sched_ms = sched_ms.min(total);
        let mut total = 0.0;
        for p in &prepared {
            let cache = RealizationCache::new();
            let start = Instant::now();
            warm_cache_queue(p, &bench_config(), &cache, threads).expect("warm");
            total += start.elapsed().as_secs_f64() * 1e3;
        }
        queue_ms = queue_ms.min(total);
    }
    println!(
        "warming ({threads} threads): scheduler {sched_ms:.2} ms vs queue {queue_ms:.2} ms \
         ({:.2}x)",
        queue_ms / sched_ms
    );
    assert!(
        sched_ms <= queue_ms * WARMING_TOLERANCE,
        "scheduler warming ({sched_ms:.2} ms) slower than the queue pass ({queue_ms:.2} ms) \
         beyond the {WARMING_TOLERANCE}x tolerance"
    );

    // --- Gates and output. ----------------------------------------------
    let speedup = best_warm_rate / one_shot_rate;
    println!("warm serve {best_warm_rate:.1}/s vs one-shot {one_shot_rate:.1}/s = {speedup:.1}x");
    if tels_bin.is_some() {
        // The bar was 3x before the word-parallel engine; packed
        // `verify_against` removed most of the per-invocation cost the
        // daemon used to amortize, so one-shot runs are ~7x faster and
        // the daemon's remaining edge is startup + cache reuse (~2.5-3x).
        assert!(
            speedup >= 2.0,
            "warm serve throughput only {speedup:.2}x the one-shot process rate (< 2x)"
        );
    }

    if !quick {
        let doc = Json::obj([
            ("benchmark", Json::str("serve_pipeline")),
            (
                "config",
                Json::obj([
                    ("factor", Json::Bool(false)),
                    ("use_tier0", Json::Bool(false)),
                    ("serve_verify", Json::Bool(false)),
                    (
                        "note",
                        Json::str(
                            "pre-factored inputs on both sides (factoring is a one-time \
                             front-end cost ~60x synthesis on this suite); tier-0 disabled \
                             on both sides so realizations exercise the shared ILP cache \
                             (answers byte-identical either way); one-shot always \
                             simulation-verifies, daemon jobs verify on request only",
                        ),
                    ),
                ]),
            ),
            ("suite_circuits", Json::Num(suite.len() as f64)),
            ("rounds_per_client", Json::Num(rounds as f64)),
            (
                "one_shot",
                Json::obj([
                    (
                        "mode",
                        Json::str(if tels_bin.is_some() {
                            "process"
                        } else {
                            "in_process"
                        }),
                    ),
                    ("total_ms", Json::Num(one_shot_ms)),
                    ("jobs", Json::Num(suite.len() as f64)),
                    ("jobs_per_sec", Json::Num(one_shot_rate)),
                ]),
            ),
            ("serve", Json::Arr(serve_rows)),
            (
                "persisted_warm",
                Json::obj([
                    ("cache_entries", Json::Num(persisted as f64)),
                    ("first_pass_ms", Json::Num(persisted_ms)),
                    ("jobs_per_sec", Json::Num(persisted_rate)),
                ]),
            ),
            ("warm_speedup_vs_one_shot", Json::Num(speedup)),
            (
                "warming",
                Json::obj([
                    ("threads", Json::Num(threads as f64)),
                    ("scheduler_ms", Json::Num(sched_ms)),
                    ("queue_ms", Json::Num(queue_ms)),
                    ("queue_over_scheduler", Json::Num(queue_ms / sched_ms)),
                ]),
            ),
            (
                "byte_identity",
                Json::obj([
                    ("circuits", Json::Num(suite.len() as f64)),
                    ("pool_widths_checked", Json::str("1, auto")),
                    ("cold_and_persisted_warm", Json::Bool(true)),
                ]),
            ),
            ("server_stats", last_stats.unwrap_or(Json::Null)),
        ]);
        let mut json = doc.pretty();
        json.push('\n');
        std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
        println!("wrote BENCH_serve.json");
    }
    std::fs::remove_dir_all(&dir).ok();
}
