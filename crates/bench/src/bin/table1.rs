//! Regenerates Table I of the paper: threshold synthesis results with the
//! fanin restriction set to 3, one-to-one mapping vs TELS, over the
//! ten-benchmark stand-in suite.
//!
//! Run with `cargo run --release -p tels-bench --bin table1`.

use tels_bench::{assert_equivalent, format_table1, run_table1_flow};
use tels_circuits::paper_suite;
use tels_core::{map_one_to_one, synthesize, TelsConfig};
use tels_logic::opt::{script_algebraic, script_boolean};

fn main() {
    let config = TelsConfig::default(); // ψ = 3, δ_on = 0, δ_off = 1
    let suite = paper_suite();
    let mut rows = Vec::new();
    for b in &suite {
        let row = run_table1_flow(b.name, &b.network, &config);
        // Functional validation, as the paper does for every benchmark.
        let tels = synthesize(&script_algebraic(&b.network), &config).expect("synthesize");
        assert_equivalent(&tels, &b.network, 0xAB);
        let baseline = map_one_to_one(&script_boolean(&b.network), &config).expect("one-to-one");
        assert_equivalent(&baseline, &b.network, 0xCD);
        println!(
            "{:<14} verified OK   (paper 1:1 {:?}  tels {:?})",
            b.name, b.paper.one_to_one, b.paper.tels
        );
        rows.push(row);
    }
    println!();
    println!("Table I reproduction (ψ = 3, δ_on = 0, δ_off = 1)");
    print!("{}", format_table1(&rows));
}
