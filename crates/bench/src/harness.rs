//! Minimal benchmark harness with a Criterion-compatible surface.
//!
//! The bench targets in `benches/` only use a small slice of the Criterion
//! API (`benchmark_group`, `sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, and the two entry-point macros), so
//! this module provides exactly that slice with wall-clock timing and no
//! external dependencies. Results are printed as
//! `group/id  time: [min median max]` per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark context handed to each registered bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related measurements.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing a sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), &mut bencher.times);
    }

    /// Times `f` with a borrowed input, mirroring Criterion's signature.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), &mut bencher.times);
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Identifies one benchmark as `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs and times the closure passed to [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Executes `f` once for warm-up, then `sample_size` timed times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        std::hint::black_box(f());
        self.times = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
    }
}

fn report(group: &str, id: &str, times: &mut [Duration]) {
    if times.is_empty() {
        println!("{group}/{id}  (no samples)");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    println!(
        "{group}/{id}  time: [{:?} {:?} {:?}]",
        times[0],
        median,
        times[times.len() - 1]
    );
}

/// Registers benchmark functions under a group entry point, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::harness::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` from one or more [`criterion_group!`] entry points.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("tels", 4).to_string(), "tels/4");
    }
}
