//! # tels-bench — experiment harness for TELS-RS
//!
//! Shared plumbing for the binaries and Criterion benches that regenerate
//! the paper's Table I and Figures 10–12. See `EXPERIMENTS.md` at the
//! workspace root for the recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

use std::time::Instant;

use tels_core::{map_one_to_one, synthesize_with_stats, SynthStats, TelsConfig, ThresholdNetwork};
use tels_logic::opt::{script_algebraic, script_boolean};
use tels_logic::Network;

/// Measured numbers for one benchmark under one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Threshold gate count.
    pub gates: usize,
    /// Network depth in gate levels.
    pub levels: usize,
    /// RTD area per Eq. (14).
    pub area: u64,
}

impl FlowResult {
    /// Extracts the three reported metrics from a threshold network.
    pub fn of(tn: &ThresholdNetwork) -> FlowResult {
        FlowResult {
            gates: tn.num_gates(),
            levels: tn.depth(),
            area: tn.area(),
        }
    }
}

/// One benchmark's Table-I style row: baseline vs TELS.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// One-to-one mapping of the `script.boolean`-optimized network.
    pub one_to_one: FlowResult,
    /// TELS synthesis of the `script.algebraic`-factored network.
    pub tels: FlowResult,
    /// Time spent in Boolean optimization (both scripts).
    pub optimize_ms: f64,
    /// Time spent in threshold synthesis proper.
    pub synthesis_ms: f64,
    /// Synthesis statistics.
    pub stats: SynthStats,
}

/// Runs the full paper flow on one benchmark network:
/// `script.boolean` → one-to-one map, and `script.algebraic` → TELS.
///
/// # Panics
///
/// Panics if the input network is malformed (the generators never produce
/// such networks) or synthesis fails internally.
pub fn run_table1_flow(name: &str, net: &Network, config: &TelsConfig) -> Table1Row {
    let t0 = Instant::now();
    let boolean_net = script_boolean(net);
    let algebraic_net = script_algebraic(net);
    let optimize_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let baseline = map_one_to_one(&boolean_net, config).expect("one-to-one mapping");
    let (tels, stats) = synthesize_with_stats(&algebraic_net, config).expect("TELS synthesis");
    let synthesis_ms = t1.elapsed().as_secs_f64() * 1e3;

    Table1Row {
        name: name.to_string(),
        one_to_one: FlowResult::of(&baseline),
        tels: FlowResult::of(&tels),
        optimize_ms,
        synthesis_ms,
        stats,
    }
}

/// Verifies a threshold network against its specification with
/// moderate-effort simulation; panics on a mismatch (the paper simulates
/// every synthesized network for functional correctness, §VI).
///
/// # Panics
///
/// Panics if a counterexample is found or the interfaces mismatch.
pub fn assert_equivalent(tn: &ThresholdNetwork, reference: &Network, seed: u64) {
    let cex = tn
        .verify_against(reference, 12, 512, seed)
        .expect("interfaces match");
    assert!(cex.is_none(), "functional mismatch: {cex:?}");
}

/// Formats a Table-I style report.
pub fn format_table1(rows: &[Table1Row]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} | {:>6} {:>6} {:>7} | {:>7} {:>7} {:>7} | {:>7} {:>8}",
        "Benchmark",
        "G(1:1)",
        "L(1:1)",
        "A(1:1)",
        "G(TELS)",
        "L(TELS)",
        "A(TELS)",
        "opt ms",
        "synth ms"
    );
    let _ = writeln!(out, "{}", "-".repeat(96));
    let mut g_sum = 0.0;
    for r in rows {
        let _ = writeln!(
            out,
            "{:<14} | {:>6} {:>6} {:>7} | {:>7} {:>7} {:>7} | {:>7.1} {:>8.1}",
            r.name,
            r.one_to_one.gates,
            r.one_to_one.levels,
            r.one_to_one.area,
            r.tels.gates,
            r.tels.levels,
            r.tels.area,
            r.optimize_ms,
            r.synthesis_ms
        );
        if r.one_to_one.gates > 0 {
            g_sum += 1.0 - r.tels.gates as f64 / r.one_to_one.gates as f64;
        }
    }
    let _ = writeln!(out, "{}", "-".repeat(96));
    let _ = writeln!(
        out,
        "average gate-count reduction: {:.1}% (paper: 52%, max 77%)",
        100.0 * g_sum / rows.len() as f64
    );
    out
}
