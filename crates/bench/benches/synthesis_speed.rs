//! Times the factoring and synthesis phases separately, reproducing the
//! §VI-A runtime observation (total under a second per benchmark; about
//! 42% of the time in threshold synthesis, the rest in factoring).

use tels_bench::harness::Criterion;
use tels_bench::{criterion_group, criterion_main};
use tels_circuits::paper_suite;
use tels_core::{synthesize, TelsConfig};
use tels_logic::opt::script_algebraic;

fn bench_phases(c: &mut Criterion) {
    let config = TelsConfig::default();
    let mut group = c.benchmark_group("synthesis_speed");
    group.sample_size(10);
    for b in paper_suite() {
        if b.name == "i10_like" || b.name == "cordic_like" {
            continue;
        }
        let algebraic = script_algebraic(&b.network);
        group.bench_function(format!("factor/{}", b.name), |bench| {
            bench.iter(|| script_algebraic(&b.network));
        });
        group.bench_function(format!("synth/{}", b.name), |bench| {
            bench.iter(|| synthesize(&algebraic, &config).expect("synthesize"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
