//! Criterion bench for the Fig. 12 experiment: the failure-rate/area
//! trade-off at v = 0.8 as δ_on grows, printing the series once.

use tels_bench::harness::{BenchmarkId, Criterion};
use tels_bench::{criterion_group, criterion_main};
use tels_circuits::paper_suite;
use tels_core::perturb::{failure_rate, PerturbOptions};
use tels_core::{synthesize, TelsConfig};
use tels_logic::opt::script_algebraic;

fn bench_fig12(c: &mut Criterion) {
    let b = paper_suite()
        .into_iter()
        .find(|b| b.name == "pm1_like")
        .expect("pm1_like");
    let algebraic = script_algebraic(&b.network);
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    for delta_on in 0..=3i64 {
        let config = TelsConfig {
            delta_on,
            ..TelsConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("synthesize", delta_on),
            &delta_on,
            |bench, _| {
                bench.iter(|| synthesize(&algebraic, &config).expect("synthesize"));
            },
        );
    }
    group.finish();

    println!("\nFig. 12: failure rate and area vs δ_on (v = 0.8)");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "δ_on", "fail rate %", "area", "area ratio"
    );
    let mut base_area = 0u64;
    for delta_on in 0..=3i64 {
        let config = TelsConfig {
            delta_on,
            ..TelsConfig::default()
        };
        let mut area = 0u64;
        let mut failing = 0usize;
        let mut count = 0usize;
        for b in paper_suite() {
            if b.name == "i10_like" || b.name == "cordic_like" {
                continue;
            }
            let tn = synthesize(&script_algebraic(&b.network), &config).expect("synthesize");
            area += tn.area();
            let opts = PerturbOptions {
                variation: 0.8,
                trials: 10,
                exhaustive_limit: 10,
                vectors: 128,
                seed: 0xf1612 ^ b.name.len() as u64,
                threads: 1,
            };
            if failure_rate(&tn, &b.network, &opts).expect("rate") > 0.0 {
                failing += 1;
            }
            count += 1;
        }
        if delta_on == 0 {
            base_area = area;
        }
        println!(
            "{:<8} {:>12.1} {:>12} {:>12.3}",
            delta_on,
            100.0 * failing as f64 / count as f64,
            area,
            area as f64 / base_area as f64
        );
    }
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
