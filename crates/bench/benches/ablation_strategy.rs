//! Ablation: the paper's backward collapse/split flow vs the
//! divide-and-conquer (Shannon) strategy its conclusion proposes as future
//! work. Expected outcome: the paper's heuristics win on gate count, which
//! is evidence for the design choices of §V.

use tels_bench::harness::Criterion;
use tels_bench::{criterion_group, criterion_main};
use tels_circuits::paper_suite;
use tels_core::{synthesize, SynthStrategy, TelsConfig};
use tels_logic::opt::script_algebraic;

fn bench_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_strategy");
    group.sample_size(10);
    let mut totals = [0usize; 2];
    for b in paper_suite() {
        if b.name == "i10_like" || b.name == "cordic_like" {
            continue;
        }
        let algebraic = script_algebraic(&b.network);
        for (i, (label, strategy)) in [
            ("paper", SynthStrategy::PaperBackward),
            ("shannon", SynthStrategy::Shannon),
        ]
        .into_iter()
        .enumerate()
        {
            let config = TelsConfig {
                strategy,
                ..TelsConfig::default()
            };
            group.bench_function(format!("{}/{label}", b.name), |bench| {
                bench.iter(|| synthesize(&algebraic, &config).expect("synthesize"));
            });
            let tn = synthesize(&algebraic, &config).expect("synthesize");
            assert_eq!(
                tn.verify_against(&b.network, 12, 256, 5)
                    .expect("interfaces"),
                None,
                "{label} strategy broke {}",
                b.name
            );
            totals[i] += tn.num_gates();
        }
    }
    group.finish();
    println!(
        "total gates — paper backward flow: {}, shannon divide-and-conquer: {}",
        totals[0], totals[1]
    );
}

criterion_group!(benches, bench_strategy);
criterion_main!(benches);
