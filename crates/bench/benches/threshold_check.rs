//! Benchmarks the full threshold check (unate transform + complement +
//! ILP) on representative function families across variable counts.

use tels_bench::harness::{BenchmarkId, Criterion};
use tels_bench::{criterion_group, criterion_main};
use tels_core::{check_threshold, TelsConfig};
use tels_logic::{Cube, Sop, Var};

fn majority_sop(n: usize) -> Sop {
    let k = n / 2 + 1;
    let mut cubes = Vec::new();
    // All k-subsets of n.
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        cubes.push(Cube::from_literals(
            idx.iter().map(|&i| (Var(i as u32), true)),
        ));
        // next combination
        let mut i = k;
        loop {
            if i == 0 {
                return Sop::from_cubes(cubes);
            }
            i -= 1;
            if idx[i] != i + n - k {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

fn ladder_sop(n: usize) -> Sop {
    Sop::from_cubes((1..n).map(|i| Cube::from_literals([(Var(0), true), (Var(i as u32), true)])))
}

fn bench_check(c: &mut Criterion) {
    let config = TelsConfig::default();
    let mut group = c.benchmark_group("threshold_check");
    for n in [3usize, 5, 7] {
        let f = majority_sop(n);
        group.bench_with_input(BenchmarkId::new("majority", n), &n, |bench, _| {
            bench.iter(|| {
                check_threshold(&f, &config)
                    .expect("check")
                    .expect("threshold")
            });
        });
    }
    for n in [4usize, 8, 12] {
        let f = ladder_sop(n);
        group.bench_with_input(BenchmarkId::new("ladder", n), &n, |bench, _| {
            bench.iter(|| {
                check_threshold(&f, &config)
                    .expect("check")
                    .expect("threshold")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_check);
criterion_main!(benches);
