//! Ablation: synthesis with and without the Theorem-1 non-threshold
//! pre-filter (§IV). The filter skips ILP calls for provably non-threshold
//! nodes; the result quality must be identical either way.

use tels_bench::harness::Criterion;
use tels_bench::{criterion_group, criterion_main};
use tels_circuits::paper_suite;
use tels_core::{synthesize_with_stats, TelsConfig};
use tels_logic::opt::script_algebraic;

fn bench_theorem1(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_theorem1");
    group.sample_size(10);
    for b in paper_suite() {
        if !matches!(b.name, "comp_like" | "cmb_like" | "term1_like") {
            continue;
        }
        let algebraic = script_algebraic(&b.network);
        for (label, use_theorem1) in [("with", true), ("without", false)] {
            let config = TelsConfig {
                use_theorem1,
                ..TelsConfig::default()
            };
            group.bench_function(format!("{}/{label}", b.name), |bench| {
                bench.iter(|| synthesize_with_stats(&algebraic, &config).expect("synthesize"));
            });
        }
        // Quality must be identical; only ILP call counts may differ.
        let on = synthesize_with_stats(&algebraic, &TelsConfig::default()).expect("on");
        let off = synthesize_with_stats(
            &algebraic,
            &TelsConfig {
                use_theorem1: false,
                ..TelsConfig::default()
            },
        )
        .expect("off");
        assert_eq!(on.0.num_gates(), off.0.num_gates());
        println!(
            "{}: gates {} | ILP calls with filter {}, without {} ({} refutations)",
            b.name,
            on.0.num_gates(),
            on.1.ilp_calls,
            off.1.ilp_calls,
            on.1.theorem1_refutations
        );
    }
    group.finish();
}

criterion_group!(benches, bench_theorem1);
criterion_main!(benches);
