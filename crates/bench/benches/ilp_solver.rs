//! Benchmarks the exact ILP solver on threshold-identification systems of
//! growing size (the AND-OR ladder f = x₁x₂ ∨ x₁x₃ ∨ … ∨ x₁x_n, which is a
//! threshold function with linearly growing weights).

use tels_bench::harness::{BenchmarkId, Criterion};
use tels_bench::{criterion_group, criterion_main};
use tels_ilp::{Cmp, Limits, Problem, Status};

/// Builds the ILP for f = x₁·(x₂ ∨ … ∨ x_n) directly.
fn ladder_problem(n: usize) -> Problem {
    let mut p = Problem::new();
    let w: Vec<_> = (0..n).map(|_| p.add_int_var()).collect();
    let t = p.add_int_var();
    p.set_objective(w.iter().map(|&v| (v, 1i64)).chain([(t, 1i64)]));
    for i in 1..n {
        p.add_constraint([(w[0], 1), (w[i], 1), (t, -1)], Cmp::Ge, 0);
    }
    // OFF: all of x₂.. on but x₁ off; x₁ on alone.
    let mut terms: Vec<_> = (1..n).map(|i| (w[i], 1i64)).collect();
    terms.push((t, -1));
    p.add_constraint(terms, Cmp::Le, -1);
    p.add_constraint([(w[0], 1), (t, -1)], Cmp::Le, -1);
    p
}

fn bench_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_solver");
    for n in [4usize, 8, 12, 16, 24] {
        let p = ladder_problem(n);
        group.bench_with_input(BenchmarkId::new("ladder", n), &n, |bench, _| {
            bench.iter(|| {
                let s = p.solve(&Limits::default()).expect("solve");
                assert_eq!(s.status, Status::Optimal);
                s
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ilp);
criterion_main!(benches);
