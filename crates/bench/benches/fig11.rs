//! Criterion bench for the Fig. 11 experiment: Monte-Carlo failure-rate
//! estimation under weight variation, printing the failure-rate matrix
//! (variation multiplier × δ_on) once.

use tels_bench::harness::{BenchmarkId, Criterion};
use tels_bench::{criterion_group, criterion_main};
use tels_circuits::paper_suite;
use tels_core::perturb::{failure_rate, PerturbOptions};
use tels_core::{synthesize, TelsConfig};
use tels_logic::opt::script_algebraic;

fn bench_fig11(c: &mut Criterion) {
    // One small representative benchmark for the timed portion.
    let b = paper_suite()
        .into_iter()
        .find(|b| b.name == "cmb_like")
        .expect("cmb_like");
    let algebraic = script_algebraic(&b.network);
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    for delta_on in 0..=3i64 {
        let config = TelsConfig {
            delta_on,
            ..TelsConfig::default()
        };
        let tn = synthesize(&algebraic, &config).expect("synthesize");
        let opts = PerturbOptions {
            variation: 0.8,
            trials: 10,
            exhaustive_limit: 10,
            vectors: 128,
            seed: 11,
            threads: 1,
        };
        group.bench_with_input(
            BenchmarkId::new("failure_rate", delta_on),
            &delta_on,
            |bench, _| {
                bench.iter(|| failure_rate(&tn, &b.network, &opts).expect("rate"));
            },
        );
    }
    group.finish();

    // Print the matrix over the (non-huge) suite.
    println!("\nFig. 11: failure rate (%) of benchmarks vs variation, per δ_on");
    print!("{:<6}", "v");
    for d in 0..=3 {
        print!("{:>10}", format!("δ_on={d}"));
    }
    println!();
    for &v in &[0.2, 0.4, 0.6, 0.8, 1.0, 1.2] {
        print!("{:<6}", v);
        for delta_on in 0..=3i64 {
            let config = TelsConfig {
                delta_on,
                ..TelsConfig::default()
            };
            let mut failing = 0usize;
            let mut count = 0usize;
            for b in paper_suite() {
                if b.name == "i10_like" || b.name == "cordic_like" {
                    continue;
                }
                let tn = synthesize(&script_algebraic(&b.network), &config).expect("synthesize");
                let opts = PerturbOptions {
                    variation: v,
                    trials: 10,
                    exhaustive_limit: 10,
                    vectors: 128,
                    seed: 0xf1611 ^ b.name.len() as u64,
                    threads: 1,
                };
                if failure_rate(&tn, &b.network, &opts).expect("rate") > 0.0 {
                    failing += 1;
                }
                count += 1;
            }
            print!("{:>10.1}", 100.0 * failing as f64 / count as f64);
        }
        println!();
    }
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
