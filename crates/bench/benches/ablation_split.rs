//! Ablation: the paper's most-frequent-variable unate split (§V-C) vs a
//! naive half split. The frequency rule should produce fewer gates because
//! split halves are more likely to be threshold functions.

use tels_bench::harness::Criterion;
use tels_bench::{criterion_group, criterion_main};
use tels_circuits::paper_suite;
use tels_core::{synthesize, SplitHeuristic, TelsConfig};
use tels_logic::opt::script_algebraic;

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_split");
    group.sample_size(10);
    let mut freq_total = 0usize;
    let mut halves_total = 0usize;
    for b in paper_suite() {
        if b.name == "i10_like" || b.name == "cordic_like" {
            continue;
        }
        let algebraic = script_algebraic(&b.network);
        for (label, heuristic) in [
            ("frequency", SplitHeuristic::Frequency),
            ("halves", SplitHeuristic::Halves),
        ] {
            let config = TelsConfig {
                split_heuristic: heuristic,
                ..TelsConfig::default()
            };
            group.bench_function(format!("{}/{label}", b.name), |bench| {
                bench.iter(|| synthesize(&algebraic, &config).expect("synthesize"));
            });
            let tn = synthesize(&algebraic, &config).expect("synthesize");
            if heuristic == SplitHeuristic::Frequency {
                freq_total += tn.num_gates();
            } else {
                halves_total += tn.num_gates();
            }
        }
    }
    group.finish();
    println!("total gates — frequency split: {freq_total}, half split: {halves_total}");
}

criterion_group!(benches, bench_split);
criterion_main!(benches);
