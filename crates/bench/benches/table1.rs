//! Criterion bench for the Table-I flow: times the full
//! optimize → one-to-one / TELS pipeline per benchmark and prints the
//! reproduced table once at the end.

use tels_bench::harness::Criterion;
use tels_bench::{criterion_group, criterion_main};
use tels_bench::{format_table1, run_table1_flow};
use tels_circuits::paper_suite;
use tels_core::TelsConfig;

fn bench_table1(c: &mut Criterion) {
    let config = TelsConfig::default();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let mut rows = Vec::new();
    for b in paper_suite() {
        // The two largest stand-ins dominate wall time; keep them out of
        // the timed loop (they still appear in the printed table below).
        if b.name != "i10_like" && b.name != "cordic_like" {
            group.bench_function(b.name, |bench| {
                bench.iter(|| run_table1_flow(b.name, &b.network, &config));
            });
        }
        rows.push(run_table1_flow(b.name, &b.network, &config));
    }
    group.finish();
    println!();
    println!("Table I reproduction (ψ = 3, δ_on = 0, δ_off = 1)");
    print!("{}", format_table1(&rows));
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
