//! Criterion bench for the Fig. 10 experiment: synthesis across the fanin
//! restriction sweep (3..=8) on the comp stand-in, printing the gate-count
//! series once.

use tels_bench::harness::{BenchmarkId, Criterion};
use tels_bench::{criterion_group, criterion_main};
use tels_circuits::comparator;
use tels_core::{map_one_to_one, synthesize, TelsConfig};
use tels_logic::opt::{script_algebraic, script_boolean};

fn bench_fig10(c: &mut Criterion) {
    let net = comparator(16);
    let boolean_net = script_boolean(&net);
    let algebraic_net = script_algebraic(&net);
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    let mut series = Vec::new();
    for psi in 3..=8usize {
        let config = TelsConfig {
            psi,
            ..TelsConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("tels", psi), &psi, |bench, _| {
            bench.iter(|| synthesize(&algebraic_net, &config).expect("synthesize"));
        });
        let baseline = map_one_to_one(&boolean_net, &config).expect("map11");
        let tels = synthesize(&algebraic_net, &config).expect("synthesize");
        series.push((psi, baseline.num_gates(), tels.num_gates()));
    }
    group.finish();
    println!("\nFig. 10: gate count vs fanin restriction (comp_like)");
    println!("{:<6} {:>12} {:>8}", "fanin", "one-to-one", "TELS");
    for (psi, base, tels) in series {
        println!("{:<6} {:>12} {:>8}", psi, base, tels);
    }
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
